#include "obs/autopsy.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "trace/trace.hpp"

namespace upcws::obs {

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::kVictimMissSearch: return "victim_miss_search";
    case Cause::kStealLatency: return "steal_latency";
    case Cause::kLockContention: return "lock_contention";
    case Cause::kTerminationWait: return "termination_wait";
    case Cause::kInjectedFault: return "injected_fault";
    case Cause::kRecoveryReplay: return "recovery_replay";
    case Cause::kCount: break;
  }
  return "?";
}

namespace {

// A segment of one rank's timeline with its current cause attribution.
struct Seg {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  Cause c = Cause::kVictimMissSearch;
};

// Paint [a, b) with cause `c` on top of `segs`, splitting segments at the
// boundaries. Later paints win (callers apply causes lowest-priority
// first).
void paint(std::vector<Seg>& segs, std::uint64_t a, std::uint64_t b,
           Cause c) {
  if (b <= a) return;
  std::vector<Seg> out;
  out.reserve(segs.size() + 2);
  for (const Seg& s : segs) {
    if (s.b <= a || s.a >= b) {
      out.push_back(s);
      continue;
    }
    if (s.a < a) out.push_back({s.a, a, s.c});
    out.push_back({std::max(s.a, a), std::min(s.b, b), c});
    if (s.b > b) out.push_back({b, s.b, s.c});
  }
  segs = std::move(out);
}

Cause default_cause(stats::State s) {
  switch (s) {
    case stats::State::kSearching: return Cause::kVictimMissSearch;
    case stats::State::kStealing: return Cause::kStealLatency;
    case stats::State::kTermination: return Cause::kTerminationWait;
    case stats::State::kWorking:
    case stats::State::kCount: break;
  }
  return Cause::kVictimMissSearch;
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  char buf[16];
  const double p = whole > 0 ? 100.0 * static_cast<double>(part) /
                                   static_cast<double>(whole)
                             : 0.0;
  std::snprintf(buf, sizeof buf, "%5.1f%%", p);
  return buf;
}

}  // namespace

RunReport autopsy(const Observer& obs, const trace::Trace* tr) {
  RunReport rep;
  rep.nranks = obs.nranks();
  rep.sample_ns = obs.sample_ns();
  rep.sample_points = obs.samples().total_points();
  if (tr != nullptr) rep.dropped_trace_events = tr->dropped_events();

  for (const Span& s : obs.spans().assemble()) {
    ++rep.spans_total;
    rep.span_timeouts += static_cast<std::uint64_t>(s.timeouts);
    if (s.salvaged) ++rep.spans_salvaged;
    switch (s.outcome) {
      case Span::Outcome::kCompleted: ++rep.spans_completed; break;
      case Span::Outcome::kDenied: ++rep.spans_denied; break;
      case Span::Outcome::kAbandoned: ++rep.spans_abandoned; break;
      case Span::Outcome::kIncomplete: ++rep.spans_incomplete; break;
    }
  }

  for (int r = 0; r < rep.nranks; ++r) {
    RankAutopsy ra;
    ra.rank = r;
    const std::vector<StateEvent>& st = obs.state_log(r);
    if (!st.empty()) {
      // Close the timeline at finish() time, falling back to the last
      // transition (a crashed rank's clock stops where its log stops).
      std::uint64_t end = obs.end_ns(r);
      for (const StateEvent& e : st) end = std::max(end, e.t_ns);
      const std::uint64_t begin = st.front().t_ns;
      ra.total_ns = end - begin;

      for (std::size_t i = 0; i < st.size(); ++i) {
        const std::uint64_t a = st[i].t_ns;
        const std::uint64_t b = i + 1 < st.size() ? st[i + 1].t_ns : end;
        if (b <= a) continue;
        if (st[i].state == stats::State::kWorking) {
          ra.working_ns += b - a;
          continue;
        }
        // Non-Working interval: state default, then overlay the cause
        // intervals in increasing priority so the strongest cause wins.
        std::vector<Seg> segs{{a, b, default_cause(st[i].state)}};
        for (const Interval& iv : obs.recoveries(r))
          paint(segs, std::max(iv.begin_ns, a), std::min(iv.end_ns, b),
                Cause::kRecoveryReplay);
        for (const Interval& iv : obs.lock_waits(r))
          paint(segs, std::max(iv.begin_ns, a), std::min(iv.end_ns, b),
                Cause::kLockContention);
        for (const Interval& iv : obs.stalls(r))
          paint(segs, std::max(iv.begin_ns, a), std::min(iv.end_ns, b),
                Cause::kInjectedFault);
        for (const Seg& s : segs)
          ra.cause_ns[static_cast<int>(s.c)] += s.b - s.a;
      }
      std::uint64_t attributed = 0;
      for (std::uint64_t v : ra.cause_ns) attributed += v;
      ra.residual_ns = ra.nonworking_ns() > attributed
                           ? ra.nonworking_ns() - attributed
                           : 0;
    }
    rep.per_rank.push_back(ra);
  }

  for (const RankAutopsy& ra : rep.per_rank) {
    rep.total_ns += ra.total_ns;
    rep.working_ns += ra.working_ns;
    rep.residual_ns += ra.residual_ns;
    for (int c = 0; c < kCauseCount; ++c) rep.cause_ns[c] += ra.cause_ns[c];
  }
  rep.nonworking_ns = rep.total_ns - rep.working_ns;
  rep.working_frac = rep.total_ns > 0
                         ? static_cast<double>(rep.working_ns) /
                               static_cast<double>(rep.total_ns)
                         : 0.0;
  rep.attributed_frac =
      rep.nonworking_ns > 0
          ? 1.0 - static_cast<double>(rep.residual_ns) /
                      static_cast<double>(rep.nonworking_ns)
          : 1.0;
  return rep;
}

std::string RunReport::ascii_table() const {
  std::ostringstream os;
  os << "rank  working";
  for (int c = 0; c < kCauseCount; ++c)
    os << "  " << cause_name(static_cast<Cause>(c));
  os << "  residual\n";
  auto row = [&](const std::string& label, std::uint64_t total,
                 std::uint64_t working,
                 const std::array<std::uint64_t, kCauseCount>& cause,
                 std::uint64_t residual) {
    os << label << "  " << pct(working, total);
    for (int c = 0; c < kCauseCount; ++c) {
      const std::size_t w =
          std::string(cause_name(static_cast<Cause>(c))).size();
      std::string p = pct(cause[c], total);
      os << "  " << std::string(w > p.size() ? w - p.size() : 0, ' ') << p;
    }
    os << "  " << pct(residual, total) << '\n';
  };
  for (const RankAutopsy& ra : per_rank) {
    char label[16];
    std::snprintf(label, sizeof label, "%4d", ra.rank);
    row(label, ra.total_ns, ra.working_ns, ra.cause_ns, ra.residual_ns);
  }
  row(" ALL", total_ns, working_ns, cause_ns, residual_ns);
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "attributed %.2f%% of non-working time (residual %llu ns)\n",
                100.0 * attributed_frac,
                static_cast<unsigned long long>(residual_ns));
  os << tail;
  return os.str();
}

void RunReport::write_json(std::ostream& os) const {
  auto frac = [](std::uint64_t part, std::uint64_t whole) {
    return whole > 0
               ? static_cast<double>(part) / static_cast<double>(whole)
               : 0.0;
  };
  os << "{\n";
  os << "  \"schema\": \"upcws-run-report-v1\",\n";
  os << "  \"nranks\": " << nranks << ",\n";
  os << "  \"sample_ns\": " << sample_ns << ",\n";
  os << "  \"sample_points\": " << sample_points << ",\n";
  os << "  \"spans\": {\n";
  os << "    \"total\": " << spans_total << ",\n";
  os << "    \"completed\": " << spans_completed << ",\n";
  os << "    \"denied\": " << spans_denied << ",\n";
  os << "    \"abandoned\": " << spans_abandoned << ",\n";
  os << "    \"incomplete\": " << spans_incomplete << ",\n";
  os << "    \"salvaged\": " << spans_salvaged << ",\n";
  os << "    \"timeouts\": " << span_timeouts << "\n";
  os << "  },\n";
  os << "  \"dropped_trace_events\": " << dropped_trace_events << ",\n";
  os << "  \"total_ns\": " << total_ns << ",\n";
  os << "  \"working_ns\": " << working_ns << ",\n";
  os << "  \"nonworking_ns\": " << nonworking_ns << ",\n";
  os << "  \"working_frac\": " << working_frac << ",\n";
  os << "  \"attributed_frac\": " << attributed_frac << ",\n";
  os << "  \"residual_ns\": " << residual_ns << ",\n";
  os << "  \"residual_frac_of_nonworking\": "
     << frac(residual_ns, nonworking_ns) << ",\n";
  os << "  \"causes_ns\": {";
  for (int c = 0; c < kCauseCount; ++c)
    os << (c > 0 ? ", " : "") << '"' << cause_name(static_cast<Cause>(c))
       << "\": " << cause_ns[c];
  os << "},\n";
  os << "  \"per_rank\": [\n";
  for (std::size_t i = 0; i < per_rank.size(); ++i) {
    const RankAutopsy& ra = per_rank[i];
    os << "    {\"rank\": " << ra.rank << ", \"total_ns\": " << ra.total_ns
       << ", \"working_ns\": " << ra.working_ns << ", \"causes_ns\": {";
    for (int c = 0; c < kCauseCount; ++c)
      os << (c > 0 ? ", " : "") << '"' << cause_name(static_cast<Cause>(c))
         << "\": " << ra.cause_ns[c];
    os << "}, \"residual_ns\": " << ra.residual_ns << "}"
       << (i + 1 < per_rank.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

const char* job_cause_name(JobCause c) {
  switch (c) {
    case JobCause::kQueueWait: return "queue_wait";
    case JobCause::kBackoff: return "backoff";
    case JobCause::kEngineRun: return "engine_run";
    case JobCause::kCancelDrain: return "cancel_drain";
    case JobCause::kShed: return "shed";
    case JobCause::kCount: break;
  }
  return "?";
}

namespace {

JobAutopsy attribute_job(const JobTimeline& j, int service) {
  JobAutopsy a;
  a.service = service;
  a.id = j.id;
  a.outcome = j.outcome;
  a.attempts = static_cast<int>(j.attempts.size());

  // The timeline's end: the terminal instant, extended past any recorded
  // activity (a truncated log without a terminal still gets walked; the
  // uncovered tail then lands in the residual).
  std::uint64_t end = std::max(j.terminal_ns, j.arrival_ns);
  for (const JobAttempt& at : j.attempts)
    end = std::max({end, at.end_ns, at.backoff_until_ns});
  a.total_ns = end - j.arrival_ns;

  auto add = [&a](JobCause c, std::uint64_t from, std::uint64_t to) {
    if (to > from) a.cause_ns[static_cast<int>(c)] += to - from;
  };
  std::uint64_t cursor = j.arrival_ns;
  for (const JobAttempt& at : j.attempts) {
    add(JobCause::kQueueWait, cursor, at.begin_ns);
    cursor = std::max(cursor, at.begin_ns);
    // A cancelled attempt splits at the deadline: the part past it is the
    // cooperative-cancellation drain, not useful engine time.
    if (at.cancelled && j.deadline_abs_ns > at.begin_ns &&
        j.deadline_abs_ns < at.end_ns) {
      add(JobCause::kEngineRun, cursor, j.deadline_abs_ns);
      add(JobCause::kCancelDrain, j.deadline_abs_ns, at.end_ns);
    } else {
      add(JobCause::kEngineRun, cursor, at.end_ns);
    }
    cursor = std::max(cursor, at.end_ns);
    if (at.backoff_until_ns > cursor) {
      add(JobCause::kBackoff, cursor, at.backoff_until_ns);
      cursor = at.backoff_until_ns;
    }
  }
  // Tail after the last attempt: a rejected job was shed there, anything
  // else (queue-death cancellation, shutdown) was waiting in the queue. A
  // log without a terminal record attributes nothing here — the gap is the
  // residual, reported rather than papered over.
  if (j.outcome != JobOutcome::kNone)
    add(j.outcome == JobOutcome::kRejected ? JobCause::kShed
                                           : JobCause::kQueueWait,
        cursor, end);

  std::uint64_t attributed = 0;
  for (std::uint64_t v : a.cause_ns) attributed += v;
  a.residual_ns = a.total_ns > attributed ? a.total_ns - attributed : 0;
  return a;
}

}  // namespace

ServiceTimeline service_autopsy(const std::vector<const JobLog*>& logs) {
  ServiceTimeline t;
  for (std::size_t li = 0; li < logs.size(); ++li) {
    if (logs[li] == nullptr) continue;
    for (const JobTimeline& j : logs[li]->jobs()) {
      JobAutopsy a = attribute_job(j, static_cast<int>(li));
      ++t.jobs;
      switch (a.outcome) {
        case JobOutcome::kCompleted: ++t.completed; break;
        case JobOutcome::kRejected: ++t.rejected; break;
        case JobOutcome::kCancelled: ++t.cancelled; break;
        case JobOutcome::kRetriesExhausted: ++t.retries_exhausted; break;
        case JobOutcome::kNone: ++t.unfinished; break;
      }
      t.total_ns += a.total_ns;
      t.residual_ns += a.residual_ns;
      for (int c = 0; c < kJobCauseCount; ++c) t.cause_ns[c] += a.cause_ns[c];
      if (a.total_ns > 0)
        t.min_job_attributed_frac =
            std::min(t.min_job_attributed_frac, a.attributed_frac());
      t.per_job.push_back(std::move(a));
    }
  }
  t.attributed_frac =
      t.total_ns > 0 ? 1.0 - static_cast<double>(t.residual_ns) /
                                 static_cast<double>(t.total_ns)
                     : 1.0;
  return t;
}

std::string ServiceTimeline::ascii_table() const {
  std::ostringstream os;
  os << "outcome            jobs";
  for (int c = 0; c < kJobCauseCount; ++c)
    os << "  " << job_cause_name(static_cast<JobCause>(c));
  os << "  residual\n";
  auto row = [&](const char* label, std::uint64_t n,
                 const std::array<std::uint64_t, kJobCauseCount>& cause,
                 std::uint64_t total, std::uint64_t residual) {
    char head[40];
    std::snprintf(head, sizeof head, "%-17s %5llu", label,
                  static_cast<unsigned long long>(n));
    os << head;
    for (int c = 0; c < kJobCauseCount; ++c) {
      const std::size_t w =
          std::string(job_cause_name(static_cast<JobCause>(c))).size();
      std::string p = pct(cause[c], total);
      os << "  " << std::string(w > p.size() ? w - p.size() : 0, ' ') << p;
    }
    os << "  " << pct(residual, total) << '\n';
  };
  auto group = [&](const char* label, JobOutcome o, std::uint64_t n) {
    std::array<std::uint64_t, kJobCauseCount> cause{};
    std::uint64_t total = 0, residual = 0;
    for (const JobAutopsy& a : per_job) {
      if (a.outcome != o) continue;
      total += a.total_ns;
      residual += a.residual_ns;
      for (int c = 0; c < kJobCauseCount; ++c) cause[c] += a.cause_ns[c];
    }
    if (n > 0) row(label, n, cause, total, residual);
  };
  group("completed", JobOutcome::kCompleted, completed);
  group("cancelled", JobOutcome::kCancelled, cancelled);
  group("retries_exhausted", JobOutcome::kRetriesExhausted, retries_exhausted);
  group("rejected", JobOutcome::kRejected, rejected);
  group("unfinished", JobOutcome::kNone, unfinished);
  row("ALL", jobs, cause_ns, total_ns, residual_ns);
  char tail[200];
  std::snprintf(tail, sizeof tail,
                "attributed %.2f%% of arrival-to-terminal time "
                "(worst job %.2f%%, residual %llu ns)\n",
                100.0 * attributed_frac, 100.0 * min_job_attributed_frac,
                static_cast<unsigned long long>(residual_ns));
  os << tail;
  return os.str();
}

void ServiceTimeline::write_json(std::ostream& os) const {
  auto causes = [&os](const std::array<std::uint64_t, kJobCauseCount>& c) {
    os << '{';
    for (int i = 0; i < kJobCauseCount; ++i)
      os << (i > 0 ? ", " : "") << '"'
         << job_cause_name(static_cast<JobCause>(i)) << "\": " << c[i];
    os << '}';
  };
  os << "{\n";
  os << "  \"schema\": \"upcws-service-timeline-v1\",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"outcomes\": {\"completed\": " << completed
     << ", \"rejected\": " << rejected << ", \"cancelled\": " << cancelled
     << ", \"retries_exhausted\": " << retries_exhausted
     << ", \"unfinished\": " << unfinished << "},\n";
  os << "  \"total_ns\": " << total_ns << ",\n";
  os << "  \"residual_ns\": " << residual_ns << ",\n";
  os << "  \"attributed_frac\": " << attributed_frac << ",\n";
  os << "  \"min_job_attributed_frac\": " << min_job_attributed_frac << ",\n";
  os << "  \"causes_ns\": ";
  causes(cause_ns);
  os << ",\n";
  os << "  \"per_job\": [\n";
  for (std::size_t i = 0; i < per_job.size(); ++i) {
    const JobAutopsy& a = per_job[i];
    os << "    {\"service\": " << a.service << ", \"id\": " << a.id
       << ", \"outcome\": \"" << job_outcome_name(a.outcome)
       << "\", \"attempts\": " << a.attempts
       << ", \"total_ns\": " << a.total_ns << ", \"causes_ns\": ";
    causes(a.cause_ns);
    os << ", \"residual_ns\": " << a.residual_ns << "}"
       << (i + 1 < per_job.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace upcws::obs
