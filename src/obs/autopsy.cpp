#include "obs/autopsy.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "trace/trace.hpp"

namespace upcws::obs {

const char* cause_name(Cause c) {
  switch (c) {
    case Cause::kVictimMissSearch: return "victim_miss_search";
    case Cause::kStealLatency: return "steal_latency";
    case Cause::kLockContention: return "lock_contention";
    case Cause::kTerminationWait: return "termination_wait";
    case Cause::kInjectedFault: return "injected_fault";
    case Cause::kRecoveryReplay: return "recovery_replay";
    case Cause::kCount: break;
  }
  return "?";
}

namespace {

// A segment of one rank's timeline with its current cause attribution.
struct Seg {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  Cause c = Cause::kVictimMissSearch;
};

// Paint [a, b) with cause `c` on top of `segs`, splitting segments at the
// boundaries. Later paints win (callers apply causes lowest-priority
// first).
void paint(std::vector<Seg>& segs, std::uint64_t a, std::uint64_t b,
           Cause c) {
  if (b <= a) return;
  std::vector<Seg> out;
  out.reserve(segs.size() + 2);
  for (const Seg& s : segs) {
    if (s.b <= a || s.a >= b) {
      out.push_back(s);
      continue;
    }
    if (s.a < a) out.push_back({s.a, a, s.c});
    out.push_back({std::max(s.a, a), std::min(s.b, b), c});
    if (s.b > b) out.push_back({b, s.b, s.c});
  }
  segs = std::move(out);
}

Cause default_cause(stats::State s) {
  switch (s) {
    case stats::State::kSearching: return Cause::kVictimMissSearch;
    case stats::State::kStealing: return Cause::kStealLatency;
    case stats::State::kTermination: return Cause::kTerminationWait;
    case stats::State::kWorking:
    case stats::State::kCount: break;
  }
  return Cause::kVictimMissSearch;
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  char buf[16];
  const double p = whole > 0 ? 100.0 * static_cast<double>(part) /
                                   static_cast<double>(whole)
                             : 0.0;
  std::snprintf(buf, sizeof buf, "%5.1f%%", p);
  return buf;
}

}  // namespace

RunReport autopsy(const Observer& obs, const trace::Trace* tr) {
  RunReport rep;
  rep.nranks = obs.nranks();
  rep.sample_ns = obs.sample_ns();
  rep.sample_points = obs.samples().total_points();
  if (tr != nullptr) rep.dropped_trace_events = tr->dropped_events();

  for (const Span& s : obs.spans().assemble()) {
    ++rep.spans_total;
    rep.span_timeouts += static_cast<std::uint64_t>(s.timeouts);
    if (s.salvaged) ++rep.spans_salvaged;
    switch (s.outcome) {
      case Span::Outcome::kCompleted: ++rep.spans_completed; break;
      case Span::Outcome::kDenied: ++rep.spans_denied; break;
      case Span::Outcome::kAbandoned: ++rep.spans_abandoned; break;
      case Span::Outcome::kIncomplete: ++rep.spans_incomplete; break;
    }
  }

  for (int r = 0; r < rep.nranks; ++r) {
    RankAutopsy ra;
    ra.rank = r;
    const std::vector<StateEvent>& st = obs.state_log(r);
    if (!st.empty()) {
      // Close the timeline at finish() time, falling back to the last
      // transition (a crashed rank's clock stops where its log stops).
      std::uint64_t end = obs.end_ns(r);
      for (const StateEvent& e : st) end = std::max(end, e.t_ns);
      const std::uint64_t begin = st.front().t_ns;
      ra.total_ns = end - begin;

      for (std::size_t i = 0; i < st.size(); ++i) {
        const std::uint64_t a = st[i].t_ns;
        const std::uint64_t b = i + 1 < st.size() ? st[i + 1].t_ns : end;
        if (b <= a) continue;
        if (st[i].state == stats::State::kWorking) {
          ra.working_ns += b - a;
          continue;
        }
        // Non-Working interval: state default, then overlay the cause
        // intervals in increasing priority so the strongest cause wins.
        std::vector<Seg> segs{{a, b, default_cause(st[i].state)}};
        for (const Interval& iv : obs.recoveries(r))
          paint(segs, std::max(iv.begin_ns, a), std::min(iv.end_ns, b),
                Cause::kRecoveryReplay);
        for (const Interval& iv : obs.lock_waits(r))
          paint(segs, std::max(iv.begin_ns, a), std::min(iv.end_ns, b),
                Cause::kLockContention);
        for (const Interval& iv : obs.stalls(r))
          paint(segs, std::max(iv.begin_ns, a), std::min(iv.end_ns, b),
                Cause::kInjectedFault);
        for (const Seg& s : segs)
          ra.cause_ns[static_cast<int>(s.c)] += s.b - s.a;
      }
      std::uint64_t attributed = 0;
      for (std::uint64_t v : ra.cause_ns) attributed += v;
      ra.residual_ns = ra.nonworking_ns() > attributed
                           ? ra.nonworking_ns() - attributed
                           : 0;
    }
    rep.per_rank.push_back(ra);
  }

  for (const RankAutopsy& ra : rep.per_rank) {
    rep.total_ns += ra.total_ns;
    rep.working_ns += ra.working_ns;
    rep.residual_ns += ra.residual_ns;
    for (int c = 0; c < kCauseCount; ++c) rep.cause_ns[c] += ra.cause_ns[c];
  }
  rep.nonworking_ns = rep.total_ns - rep.working_ns;
  rep.working_frac = rep.total_ns > 0
                         ? static_cast<double>(rep.working_ns) /
                               static_cast<double>(rep.total_ns)
                         : 0.0;
  rep.attributed_frac =
      rep.nonworking_ns > 0
          ? 1.0 - static_cast<double>(rep.residual_ns) /
                      static_cast<double>(rep.nonworking_ns)
          : 1.0;
  return rep;
}

std::string RunReport::ascii_table() const {
  std::ostringstream os;
  os << "rank  working";
  for (int c = 0; c < kCauseCount; ++c)
    os << "  " << cause_name(static_cast<Cause>(c));
  os << "  residual\n";
  auto row = [&](const std::string& label, std::uint64_t total,
                 std::uint64_t working,
                 const std::array<std::uint64_t, kCauseCount>& cause,
                 std::uint64_t residual) {
    os << label << "  " << pct(working, total);
    for (int c = 0; c < kCauseCount; ++c) {
      const std::size_t w =
          std::string(cause_name(static_cast<Cause>(c))).size();
      std::string p = pct(cause[c], total);
      os << "  " << std::string(w > p.size() ? w - p.size() : 0, ' ') << p;
    }
    os << "  " << pct(residual, total) << '\n';
  };
  for (const RankAutopsy& ra : per_rank) {
    char label[16];
    std::snprintf(label, sizeof label, "%4d", ra.rank);
    row(label, ra.total_ns, ra.working_ns, ra.cause_ns, ra.residual_ns);
  }
  row(" ALL", total_ns, working_ns, cause_ns, residual_ns);
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "attributed %.2f%% of non-working time (residual %llu ns)\n",
                100.0 * attributed_frac,
                static_cast<unsigned long long>(residual_ns));
  os << tail;
  return os.str();
}

void RunReport::write_json(std::ostream& os) const {
  auto frac = [](std::uint64_t part, std::uint64_t whole) {
    return whole > 0
               ? static_cast<double>(part) / static_cast<double>(whole)
               : 0.0;
  };
  os << "{\n";
  os << "  \"schema\": \"upcws-run-report-v1\",\n";
  os << "  \"nranks\": " << nranks << ",\n";
  os << "  \"sample_ns\": " << sample_ns << ",\n";
  os << "  \"sample_points\": " << sample_points << ",\n";
  os << "  \"spans\": {\n";
  os << "    \"total\": " << spans_total << ",\n";
  os << "    \"completed\": " << spans_completed << ",\n";
  os << "    \"denied\": " << spans_denied << ",\n";
  os << "    \"abandoned\": " << spans_abandoned << ",\n";
  os << "    \"incomplete\": " << spans_incomplete << ",\n";
  os << "    \"salvaged\": " << spans_salvaged << ",\n";
  os << "    \"timeouts\": " << span_timeouts << "\n";
  os << "  },\n";
  os << "  \"dropped_trace_events\": " << dropped_trace_events << ",\n";
  os << "  \"total_ns\": " << total_ns << ",\n";
  os << "  \"working_ns\": " << working_ns << ",\n";
  os << "  \"nonworking_ns\": " << nonworking_ns << ",\n";
  os << "  \"working_frac\": " << working_frac << ",\n";
  os << "  \"attributed_frac\": " << attributed_frac << ",\n";
  os << "  \"residual_ns\": " << residual_ns << ",\n";
  os << "  \"residual_frac_of_nonworking\": "
     << frac(residual_ns, nonworking_ns) << ",\n";
  os << "  \"causes_ns\": {";
  for (int c = 0; c < kCauseCount; ++c)
    os << (c > 0 ? ", " : "") << '"' << cause_name(static_cast<Cause>(c))
       << "\": " << cause_ns[c];
  os << "},\n";
  os << "  \"per_rank\": [\n";
  for (std::size_t i = 0; i < per_rank.size(); ++i) {
    const RankAutopsy& ra = per_rank[i];
    os << "    {\"rank\": " << ra.rank << ", \"total_ns\": " << ra.total_ns
       << ", \"working_ns\": " << ra.working_ns << ", \"causes_ns\": {";
    for (int c = 0; c < kCauseCount; ++c)
      os << (c > 0 ? ", " : "") << '"' << cause_name(static_cast<Cause>(c))
         << "\": " << ra.cause_ns[c];
    os << "}, \"residual_ns\": " << ra.residual_ns << "}"
       << (i + 1 < per_rank.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace upcws::obs
