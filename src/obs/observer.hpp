// The run Observer: one object attached to a run (WsConfig::obs) that
// collects every telemetry stream the subsystem produces —
//
//   * per-rank metric registries (counters/gauges/histograms the workers
//     register), sampled on a virtual-time cadence into time-series;
//   * the Figure-1 state log of every rank (mirrors the trace's kState
//     events so idle-time attribution works without a Trace attached);
//   * lock-wait, injected-stall and recovery intervals (from the engine's
//     ObsSink hooks and the workers' recovery brackets);
//   * the causal steal-span log (obs/spans.hpp).
//
// All hooks are pure observation: they are invoked from the observed
// rank's own fiber/thread AFTER all cost accounting, never charge Ctx
// time, and never touch another rank's buffers — so a run with an Observer
// attached is byte-identical to the same run without one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "pgas/engine.hpp"
#include "stats/stats.hpp"

namespace upcws::obs {

/// A half-open [begin_ns, end_ns) slice of one rank's time.
struct Interval {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// One Figure-1 state transition on a rank.
struct StateEvent {
  std::uint64_t t_ns = 0;
  stats::State state = stats::State::kWorking;
};

class Observer final : public pgas::ObsSink {
 public:
  Observer() = default;

  /// Reset all streams for a run of `nranks` ranks, sampling every
  /// `sample_ns` of Ctx time (0 disables sampling; everything else still
  /// records). ws::run_search calls this before the engine starts.
  void start_run(int nranks, std::uint64_t sample_ns);

  int nranks() const { return static_cast<int>(ranks_.size()); }
  std::uint64_t sample_ns() const { return cadence_; }

  // ---- instrumentation surface (engine hooks + workers) ------------------

  Registry& registry(int rank) { return ranks_[rank].reg; }
  const Registry& registry(int rank) const { return ranks_[rank].reg; }

  SpanLog& spans() { return spans_; }
  const SpanLog& spans() const { return spans_; }

  /// Record a state transition at Ctx time `t_ns` (workers call this from
  /// set_state, alongside the trace).
  void state(int rank, std::uint64_t t_ns, stats::State s) {
    ranks_[rank].states.push_back({t_ns, s});
  }

  /// Close rank's timeline at `t_ns`.
  void finish(int rank, std::uint64_t t_ns) { ranks_[rank].end_ns = t_ns; }

  /// Bracket a crash-recovery action (salvage / replay) for attribution.
  void recovery_interval(int rank, std::uint64_t begin_ns,
                         std::uint64_t end_ns) {
    if (end_ns > begin_ns) ranks_[rank].recoveries.push_back({begin_ns, end_ns});
  }

  // ---- pgas::ObsSink -----------------------------------------------------

  void on_tick(int rank, std::uint64_t now_ns) override;
  void on_lock_wait(int rank, std::uint64_t now_ns,
                    std::uint64_t wait_ns) override;
  void on_stall(int rank, std::uint64_t t_ns, std::uint64_t stall_ns) override;
  void on_remote_op(int rank, int owner, OpKind kind,
                    std::uint64_t now_ns) override;
  void on_psim_window(const PsimWindow& w) override;
  void on_psim_fallback(const char* reason) override;

  // ---- post-run readout --------------------------------------------------

  const SampleStore& samples() const { return samples_; }
  const std::vector<StateEvent>& state_log(int rank) const {
    return ranks_[rank].states;
  }
  std::uint64_t end_ns(int rank) const { return ranks_[rank].end_ns; }
  const std::vector<Interval>& lock_waits(int rank) const {
    return ranks_[rank].lock_waits;
  }
  const std::vector<Interval>& stalls(int rank) const {
    return ranks_[rank].stalls;
  }
  const std::vector<Interval>& recoveries(int rank) const {
    return ranks_[rank].recoveries;
  }

  /// Cross-rank counter totals / distribution merges.
  std::map<std::string, std::uint64_t> merged_counters() const;
  std::map<std::string, stats::LogHistogram> merged_histograms() const;

  /// Engine-level (not per-rank) registry: psim window/event counters live
  /// here. Mutated only from the psim barrier completion (single-threaded;
  /// every worker is blocked at the barrier) or post-run.
  Registry& engine_registry() { return engine_reg_; }
  const Registry& engine_registry() const { return engine_reg_; }

  /// Every conservative-PDES window the engine closed, in order (empty for
  /// non-psim runs and serial-lane fallbacks).
  const std::vector<pgas::ObsSink::PsimWindow>& psim_windows() const {
    return psim_windows_;
  }

  /// Serial-lane fallback tallies by reason (see PsimEngine::fallback_reason);
  /// accumulates across runs between start_run calls so a soak attaching one
  /// Observer to many psim attempts sees the full attribution.
  const std::map<std::string, std::uint64_t>& psim_fallbacks() const {
    return psim_fallbacks_;
  }

  /// Stream all sampled points as JSONL (obs::read_jsonl parses it back).
  void write_metrics_jsonl(std::ostream& os) const {
    samples_.write_jsonl(os);
  }

  /// One sparkline per sampled metric (rank-summed; counters are shown as
  /// per-sample deltas so bursts read as spikes, gauges as raw values).
  std::string sparklines(int width = 60) const;

 private:
  struct PerRank {
    alignas(64) Registry reg;
    std::uint64_t next_sample_ns = 0;
    std::uint64_t end_ns = 0;
    std::vector<StateEvent> states;
    std::vector<Interval> lock_waits;
    std::vector<Interval> stalls;
    std::vector<Interval> recoveries;
  };
  std::vector<PerRank> ranks_;
  SampleStore samples_;
  SpanLog spans_;
  std::uint64_t cadence_ = 0;
  Registry engine_reg_;
  std::uint64_t engine_next_sample_ns_ = 0;
  std::vector<pgas::ObsSink::PsimWindow> psim_windows_;
  std::map<std::string, std::uint64_t> psim_fallbacks_;
};

}  // namespace upcws::obs
