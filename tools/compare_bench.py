#!/usr/bin/env python3
"""Validate and diff upcws-bench-v1 JSON files.

Usage:
  compare_bench.py --check-only CURRENT.json
      Validate the schema only (CI gate for a freshly generated file).

  compare_bench.py CURRENT.json BASELINE.json [--threshold 0.15]
      Per-result, per-metric comparison against a checked-in baseline.
      Prints a delta table and WARNS (exit 0) on any regression beyond the
      threshold; pass --fail-on-regression to turn warnings into exit 1.

Regression direction is inferred from the metric name: *_per_sec and plain
counters are better-higher; ns_per_* and *_s (durations) are better-lower.
Metrics that are neither (e.g. `nodes`, `switches`) are checked for drift in
either direction -- a change there means the workload itself changed, which
invalidates the comparison.
"""

import argparse
import json
import sys

SCHEMA = "upcws-bench-v1"

# Metrics that describe the workload, not its speed: any change is suspect.
INVARIANT = {"nodes", "switches", "virtual_elapsed_s"}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare_bench: cannot read {path}: {e}")


def validate(doc, path):
    errors = []
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("missing/empty 'bench' name")
    if doc.get("mode") not in ("quick", "default", "full"):
        errors.append(f"bad mode {doc.get('mode')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        errors.append("'results' must be a non-empty list")
        results = []
    seen = set()
    for i, r in enumerate(results):
        name = r.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"results[{i}]: missing name")
            continue
        if name in seen:
            errors.append(f"duplicate result name {name!r}")
        seen.add(name)
        metrics = r.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            errors.append(f"{name}: 'metrics' must be a non-empty object")
            continue
        for k, v in metrics.items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                errors.append(f"{name}: metric {k!r} is not a number")
        notes = r.get("notes", {})
        if not isinstance(notes, dict):
            errors.append(f"{name}: 'notes' must be an object")
    for e in errors:
        print(f"compare_bench: {path}: {e}", file=sys.stderr)
    return not errors


def direction(metric):
    """+1 higher-is-better, -1 lower-is-better, 0 invariant."""
    if metric in INVARIANT:
        return 0
    if metric.endswith("_per_sec") or metric.endswith("_per_s"):
        return +1
    if metric.startswith("ns_per_") or metric.endswith("_s"):
        return -1
    return +1


def compare(cur, base, threshold, fail_on_regression):
    cur_by = {r["name"]: r for r in cur["results"]}
    base_by = {r["name"]: r for r in base["results"]}
    regressions = []
    drift = []

    print(f"{'result':<28} {'metric':<20} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}")
    for name, br in base_by.items():
        cr = cur_by.get(name)
        if cr is None:
            print(f"{name:<28} (missing from current run)")
            continue
        for metric, bv in br["metrics"].items():
            cv = cr["metrics"].get(metric)
            if cv is None or bv == 0:
                continue
            ratio = cv / bv
            delta = ratio - 1.0
            d = direction(metric)
            flag = ""
            if d == 0 and abs(delta) > 1e-9:
                flag = "  WORKLOAD CHANGED"
                drift.append((name, metric, bv, cv))
            elif d * delta < -threshold:
                flag = "  REGRESSION"
                regressions.append((name, metric, bv, cv, delta))
            elif d * delta > threshold:
                flag = "  improved"
            print(f"{name:<28} {metric:<20} {bv:>12.4g} {cv:>12.4g} "
                  f"{delta:>+7.1%}{flag}")
    for name in cur_by:
        if name not in base_by:
            print(f"{name:<28} (new result, no baseline)")

    if drift:
        print(f"\ncompare_bench: WARNING: {len(drift)} workload-invariant "
              "metric(s) changed -- the bench is not measuring the same work "
              "as the baseline:", file=sys.stderr)
        for name, metric, bv, cv in drift:
            print(f"  {name} {metric}: {bv:g} -> {cv:g}", file=sys.stderr)
    if regressions:
        print(f"\ncompare_bench: WARNING: {len(regressions)} metric(s) "
              f"regressed more than {threshold:.0%} vs baseline:",
              file=sys.stderr)
        for name, metric, bv, cv, delta in regressions:
            print(f"  {name} {metric}: {bv:g} -> {cv:g} ({delta:+.1%})",
                  file=sys.stderr)
        if fail_on_regression:
            return 1
        print("(warning only; re-run on a quiet machine or refresh the "
              "baseline if the change is intended)", file=sys.stderr)
    else:
        print("\ncompare_bench: no regressions beyond "
              f"{threshold:.0%} threshold")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", help="freshly generated BENCH_*.json")
    ap.add_argument("baseline", nargs="?",
                    help="checked-in baseline to diff against")
    ap.add_argument("--check-only", action="store_true",
                    help="validate the schema of CURRENT and exit")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative regression threshold (default 0.15)")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit 1 instead of warning on regressions")
    args = ap.parse_args()

    cur = load(args.current)
    if not validate(cur, args.current):
        return 1
    if args.check_only:
        n = len(cur["results"])
        print(f"compare_bench: {args.current}: valid {SCHEMA} "
              f"({n} results)")
        return 0
    if not args.baseline:
        sys.exit("compare_bench: need BASELINE (or --check-only)")
    base = load(args.baseline)
    if not validate(base, args.baseline):
        return 1
    return compare(cur, base, args.threshold, args.fail_on_regression)


if __name__ == "__main__":
    sys.exit(main())
