#!/usr/bin/env python3
"""Validate and diff upcws-bench-v1 JSON files.

Usage:
  compare_bench.py --check-only CURRENT.json
      Validate the schema only (CI gate for a freshly generated file).

  compare_bench.py CURRENT.json BASELINE.json [--threshold 0.15]
      Per-result, per-metric comparison against a checked-in baseline.
      Prints a delta table and WARNS (exit 0) on any regression beyond the
      threshold; pass --fail-on-regression to turn warnings into exit 1.

  compare_bench.py CURRENT.json BASELINE.json --fail-over 30
      Same comparison, but any regression beyond 30% is a HARD FAIL
      (exit 1) regardless of --fail-on-regression. Lets CI keep the
      warn-at-15% policy while still catching catastrophic slowdowns.

  compare_bench.py --self-test
      Run the built-in unit checks on canned JSON and exit.

Regression direction is inferred from the metric name: *_per_sec and plain
counters are better-higher; ns_per_* and *_s (durations) are better-lower.
Metrics that are neither (e.g. `nodes`, `switches`) are checked for drift in
either direction -- a change there means the workload itself changed, which
invalidates the comparison.
"""

import argparse
import json
import sys

SCHEMA = "upcws-bench-v1"

# Metrics that describe the workload, not its speed: any change is suspect.
INVARIANT = {"nodes", "switches", "virtual_elapsed_s"}

# Metrics that legitimately vary with the host (psim shard layout follows the
# worker count): printed for the record, never flagged as regression or drift.
NEUTRAL = {"windows", "events", "events_per_window"}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare_bench: cannot read {path}: {e}")


def validate(doc, path):
    errors = []
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append("missing/empty 'bench' name")
    if doc.get("mode") not in ("quick", "default", "full"):
        errors.append(f"bad mode {doc.get('mode')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        errors.append("'results' must be a non-empty list")
        results = []
    seen = set()
    for i, r in enumerate(results):
        name = r.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"results[{i}]: missing name")
            continue
        if name in seen:
            errors.append(f"duplicate result name {name!r}")
        seen.add(name)
        metrics = r.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            errors.append(f"{name}: 'metrics' must be a non-empty object")
            continue
        for k, v in metrics.items():
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                errors.append(f"{name}: metric {k!r} is not a number")
        notes = r.get("notes", {})
        if not isinstance(notes, dict):
            errors.append(f"{name}: 'notes' must be an object")
    for e in errors:
        print(f"compare_bench: {path}: {e}", file=sys.stderr)
    return not errors


def direction(metric):
    """+1 higher-is-better, -1 lower-is-better, 0 invariant, None neutral."""
    if metric in NEUTRAL:
        return None
    if metric in INVARIANT:
        return 0
    if metric.endswith("_per_sec") or metric.endswith("_per_s"):
        return +1
    if metric.startswith("ns_per_") or metric.endswith("_s"):
        return -1
    return +1


def compare(cur, base, threshold, fail_on_regression, fail_over=None):
    cur_by = {r["name"]: r for r in cur["results"]}
    base_by = {r["name"]: r for r in base["results"]}
    regressions = []
    hard_fails = []
    drift = []

    print(f"{'result':<28} {'metric':<20} {'baseline':>12} {'current':>12} "
          f"{'delta':>8}")
    for name, br in base_by.items():
        cr = cur_by.get(name)
        if cr is None:
            print(f"{name:<28} (missing from current run)")
            continue
        for metric, bv in br["metrics"].items():
            cv = cr["metrics"].get(metric)
            if cv is None or bv == 0:
                continue
            ratio = cv / bv
            delta = ratio - 1.0
            d = direction(metric)
            flag = ""
            if d is None:
                print(f"{name:<28} {metric:<20} {bv:>12.4g} {cv:>12.4g} "
                      f"{delta:>+7.1%}  (host-dependent)")
                continue
            if d == 0 and abs(delta) > 1e-9:
                flag = "  WORKLOAD CHANGED"
                drift.append((name, metric, bv, cv))
            elif d * delta < -threshold:
                flag = "  REGRESSION"
                regressions.append((name, metric, bv, cv, delta))
            elif d * delta > threshold:
                flag = "  improved"
            if fail_over is not None and d and d * delta < -fail_over:
                flag = "  HARD FAIL"
                hard_fails.append((name, metric, bv, cv, delta))
            print(f"{name:<28} {metric:<20} {bv:>12.4g} {cv:>12.4g} "
                  f"{delta:>+7.1%}{flag}")
    for name in cur_by:
        if name not in base_by:
            print(f"{name:<28} (new result, no baseline)")

    if drift:
        print(f"\ncompare_bench: WARNING: {len(drift)} workload-invariant "
              "metric(s) changed -- the bench is not measuring the same work "
              "as the baseline:", file=sys.stderr)
        for name, metric, bv, cv in drift:
            print(f"  {name} {metric}: {bv:g} -> {cv:g}", file=sys.stderr)
    if hard_fails:
        print(f"\ncompare_bench: FAIL: {len(hard_fails)} metric(s) "
              f"regressed more than the --fail-over gate of {fail_over:.0%}:",
              file=sys.stderr)
        for name, metric, bv, cv, delta in hard_fails:
            print(f"  {name} {metric}: {bv:g} -> {cv:g} ({delta:+.1%})",
                  file=sys.stderr)
        return 1
    if regressions:
        print(f"\ncompare_bench: WARNING: {len(regressions)} metric(s) "
              f"regressed more than {threshold:.0%} vs baseline:",
              file=sys.stderr)
        for name, metric, bv, cv, delta in regressions:
            print(f"  {name} {metric}: {bv:g} -> {cv:g} ({delta:+.1%})",
                  file=sys.stderr)
        if fail_on_regression:
            return 1
        print("(warning only; re-run on a quiet machine or refresh the "
              "baseline if the change is intended)", file=sys.stderr)
    else:
        print("\ncompare_bench: no regressions beyond "
              f"{threshold:.0%} threshold")
    return 0


def _canned(rate, nodes=1000):
    """One-result doc with a controllable throughput metric."""
    return {
        "schema": SCHEMA, "bench": "selftest", "mode": "quick",
        "results": [{"name": "case", "metrics":
                     {"nodes_per_sec": rate, "nodes": nodes}}],
    }


def self_test():
    """Unit checks on canned JSON; prints PASS/FAIL per case, exits 1 on
    any failure. Covers schema validation, regression direction, and the
    warn/--fail-on-regression/--fail-over exit-code matrix."""
    import contextlib
    import io

    cases = []

    def run_compare(cur, base, **kw):
        with contextlib.redirect_stdout(io.StringIO()), \
             contextlib.redirect_stderr(io.StringIO()):
            return compare(cur, base, kw.pop("threshold", 0.15),
                           kw.pop("fail_on_regression", False),
                           kw.pop("fail_over", None))

    def quiet_validate(doc):
        with contextlib.redirect_stderr(io.StringIO()):
            return validate(doc, "<canned>")

    cases.append(("valid doc passes validation",
                  quiet_validate(_canned(100.0))))
    bad_schema = _canned(100.0)
    bad_schema["schema"] = "nope-v0"
    cases.append(("wrong schema rejected", not quiet_validate(bad_schema)))
    dup = _canned(100.0)
    dup["results"].append(dup["results"][0])
    cases.append(("duplicate result name rejected", not quiet_validate(dup)))
    nan = _canned(100.0)
    nan["results"][0]["metrics"]["nodes"] = "many"
    cases.append(("non-numeric metric rejected", not quiet_validate(nan)))

    cases.append(("direction: throughput is better-higher",
                  direction("nodes_per_sec") == +1))
    cases.append(("direction: duration is better-lower",
                  direction("elapsed_s") == -1))
    cases.append(("direction: workload metric is invariant",
                  direction("nodes") == 0))
    cases.append(("direction: host-dependent metric is neutral",
                  direction("events_per_window") is None))

    base = _canned(100.0)
    cases.append(("5% slowdown under threshold -> exit 0",
                  run_compare(_canned(95.0), base) == 0))
    cases.append(("20% slowdown warns but exits 0",
                  run_compare(_canned(80.0), base) == 0))
    cases.append(("20% slowdown + --fail-on-regression -> exit 1",
                  run_compare(_canned(80.0), base,
                              fail_on_regression=True) == 1))
    cases.append(("20% slowdown under --fail-over 0.30 -> exit 0",
                  run_compare(_canned(80.0), base, fail_over=0.30) == 0))
    cases.append(("40% slowdown over --fail-over 0.30 -> exit 1",
                  run_compare(_canned(60.0), base, fail_over=0.30) == 1))
    cases.append(("40% speedup never trips --fail-over",
                  run_compare(_canned(140.0), base, fail_over=0.30) == 0))
    cases.append(("workload drift detected but non-fatal",
                  run_compare(_canned(100.0, nodes=999), base) == 0))
    neut_base = _canned(100.0)
    neut_base["results"][0]["metrics"]["windows"] = 50
    neut_cur = _canned(100.0)
    neut_cur["results"][0]["metrics"]["windows"] = 500
    cases.append(("neutral metric change never flagged, even over fail-over",
                  run_compare(neut_cur, neut_base, fail_over=0.30) == 0))

    failed = 0
    for name, ok in cases:
        print(f"  {'PASS' if ok else 'FAIL'}  {name}")
        failed += not ok
    print(f"compare_bench --self-test: {len(cases) - failed}/{len(cases)} "
          "checks passed")
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", nargs="?",
                    help="freshly generated BENCH_*.json")
    ap.add_argument("baseline", nargs="?",
                    help="checked-in baseline to diff against")
    ap.add_argument("--check-only", action="store_true",
                    help="validate the schema of CURRENT and exit")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative regression threshold (default 0.15)")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit 1 instead of warning on regressions")
    ap.add_argument("--fail-over", type=float, metavar="PCT",
                    help="hard-fail (exit 1) on any regression beyond PCT "
                         "percent, independent of --fail-on-regression")
    ap.add_argument("--self-test", action="store_true",
                    help="run built-in checks on canned JSON and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.current:
        sys.exit("compare_bench: need CURRENT.json (or --self-test)")
    if args.fail_over is not None and args.fail_over <= 0:
        sys.exit("compare_bench: --fail-over must be a positive percentage")

    cur = load(args.current)
    if not validate(cur, args.current):
        return 1
    if args.check_only:
        n = len(cur["results"])
        print(f"compare_bench: {args.current}: valid {SCHEMA} "
              f"({n} results)")
        return 0
    if not args.baseline:
        sys.exit("compare_bench: need BASELINE (or --check-only)")
    base = load(args.baseline)
    if not validate(base, args.baseline):
        return 1
    fail_over = None if args.fail_over is None else args.fail_over / 100.0
    return compare(cur, base, args.threshold, args.fail_on_regression,
                   fail_over)


if __name__ == "__main__":
    sys.exit(main())
