#!/usr/bin/env python3
"""Validate machine-readable reports against their schema.

Dispatches on the document's "schema" field:

upcws-run-report-v1 (uts_cli --report), structurally and semantically:
  * required keys present with sane types,
  * per-rank entries cover every rank exactly once,
  * causes + residual exactly account for the non-working time,
  * the idle-time autopsy attributed >= 99% of non-working time
    (residual_frac_of_nonworking <= 0.01) -- the PR's acceptance bar.

upcws-soak-summary-v1 (chaos_soak --json):
  * passed + failed == campaigns, engine split sums to campaigns,
  * per-algorithm campaign counts sum to campaigns,
  * one violation entry per failed campaign, each naming the oracle
    that fired and the replay file that reproduces it.

Stdlib only. Exit 0 on success, 1 with a message on any violation.
"""
import json
import sys

SCHEMA = "upcws-run-report-v1"
SOAK_SCHEMA = "upcws-soak-summary-v1"
CAUSES = [
    "victim_miss_search",
    "steal_latency",
    "lock_contention",
    "termination_wait",
    "injected_fault",
    "recovery_replay",
]
TOP_KEYS = {
    "schema": str,
    "nranks": int,
    "sample_ns": int,
    "sample_points": int,
    "spans": dict,
    "dropped_trace_events": int,
    "total_ns": int,
    "working_ns": int,
    "nonworking_ns": int,
    "working_frac": float,
    "attributed_frac": float,
    "residual_ns": int,
    "residual_frac_of_nonworking": float,
    "causes_ns": dict,
    "per_rank": list,
}
SPAN_KEYS = ["total", "completed", "denied", "abandoned", "incomplete",
             "salvaged", "timeouts"]


def fail(msg):
    print(f"validate_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_causes(obj, where):
    if sorted(obj) != sorted(CAUSES):
        fail(f"{where}: causes_ns keys {sorted(obj)} != {sorted(CAUSES)}")
    for k, v in obj.items():
        if not isinstance(v, int) or v < 0:
            fail(f"{where}: causes_ns[{k}] = {v!r} is not a non-negative int")


SOAK_TOP_KEYS = {
    "schema": str,
    "campaigns": int,
    "passed": int,
    "failed": int,
    "engines": dict,
    "algos": dict,
    "fault_classes": dict,
    "violations": list,
    "elapsed_s": float,
}
SOAK_VIOLATION_KEYS = ["campaign", "engine", "algo", "oracle", "replay",
                       "message"]


def validate_soak(rep, path):
    for key, typ in SOAK_TOP_KEYS.items():
        if key not in rep:
            fail(f"missing key {key!r}")
        val = rep[key]
        if typ is float and isinstance(val, int):
            val = float(val)
        if not isinstance(val, typ):
            fail(f"key {key!r} has type {type(rep[key]).__name__}, "
                 f"want {typ.__name__}")
    n = rep["campaigns"]
    if n < 1:
        fail(f"campaigns = {n}")
    if rep["passed"] + rep["failed"] != n:
        fail(f"passed {rep['passed']} + failed {rep['failed']} != "
             f"campaigns {n}")
    engines = rep["engines"]
    if sorted(engines) != ["sim", "threads"]:
        fail(f"engines keys {sorted(engines)} != ['sim', 'threads']")
    for k, v in engines.items():
        if not isinstance(v, int) or v < 0:
            fail(f"engines[{k}] = {v!r} is not a non-negative int")
    if engines["sim"] + engines["threads"] != n:
        fail(f"engine split {engines['sim']} + {engines['threads']} != "
             f"campaigns {n}")
    for table in ("algos", "fault_classes"):
        for k, v in rep[table].items():
            if not isinstance(v, int) or not 0 <= v <= n:
                fail(f"{table}[{k}] = {v!r} out of range [0, {n}]")
    if not rep["algos"]:
        fail("no algorithms exercised")
    algo_sum = sum(rep["algos"].values())
    if algo_sum != n:
        fail(f"per-algo campaign counts sum to {algo_sum}, "
             f"campaigns is {n}")
    violations = rep["violations"]
    if len(violations) != rep["failed"]:
        fail(f"{len(violations)} violation entries for {rep['failed']} "
             "failed campaigns")
    for i, v in enumerate(violations):
        for k in SOAK_VIOLATION_KEYS:
            if k not in v:
                fail(f"violations[{i}] missing {k!r}")
        if not 0 <= v["campaign"] < n:
            fail(f"violations[{i}]: campaign id {v['campaign']} "
                 f"out of range")
        if v["engine"] not in ("sim", "threads"):
            fail(f"violations[{i}]: bad engine {v['engine']!r}")
        if not v["oracle"]:
            fail(f"violations[{i}]: empty oracle name")
    if rep["elapsed_s"] < 0:
        fail(f"elapsed_s = {rep['elapsed_s']}")

    print(f"validate_report: OK: {path} -- {n} campaigns "
          f"({engines['threads']} on threads), {rep['passed']} passed, "
          f"{rep['failed']} failed, {len(rep['algos'])} algorithms")


def main():
    if len(sys.argv) != 2:
        fail("usage: validate_report.py report.json")
    try:
        with open(sys.argv[1]) as f:
            rep = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if rep.get("schema") == SOAK_SCHEMA:
        validate_soak(rep, sys.argv[1])
        return

    for key, typ in TOP_KEYS.items():
        if key not in rep:
            fail(f"missing key {key!r}")
        val = rep[key]
        if typ is float and isinstance(val, int):
            val = float(val)  # JSON integers are valid doubles
        if not isinstance(val, typ):
            fail(f"key {key!r} has type {type(rep[key]).__name__}, "
                 f"want {typ.__name__}")
    if rep["schema"] != SCHEMA:
        fail(f"schema {rep['schema']!r} != {SCHEMA!r}")
    if rep["nranks"] < 1:
        fail(f"nranks = {rep['nranks']}")

    spans = rep["spans"]
    for k in SPAN_KEYS:
        if k not in spans or not isinstance(spans[k], int) or spans[k] < 0:
            fail(f"spans.{k} missing or not a non-negative int")
    accounted = (spans["completed"] + spans["denied"] + spans["abandoned"]
                 + spans["incomplete"])
    if accounted != spans["total"]:
        fail(f"span outcomes sum to {accounted}, total says {spans['total']}")

    check_causes(rep["causes_ns"], "aggregate")
    if rep["working_ns"] + rep["nonworking_ns"] != rep["total_ns"]:
        fail("working_ns + nonworking_ns != total_ns")
    cause_sum = sum(rep["causes_ns"].values()) + rep["residual_ns"]
    if cause_sum != rep["nonworking_ns"]:
        fail(f"causes + residual = {cause_sum} != "
             f"nonworking_ns {rep['nonworking_ns']}")

    per_rank = rep["per_rank"]
    if len(per_rank) != rep["nranks"]:
        fail(f"per_rank has {len(per_rank)} entries for {rep['nranks']} ranks")
    seen = set()
    for entry in per_rank:
        for k in ("rank", "total_ns", "working_ns", "causes_ns",
                  "residual_ns"):
            if k not in entry:
                fail(f"per_rank entry missing {k!r}")
        r = entry["rank"]
        if r in seen or not 0 <= r < rep["nranks"]:
            fail(f"bad or duplicate rank id {r}")
        seen.add(r)
        check_causes(entry["causes_ns"], f"rank {r}")
        nonworking = entry["total_ns"] - entry["working_ns"]
        rank_sum = sum(entry["causes_ns"].values()) + entry["residual_ns"]
        if rank_sum != nonworking:
            fail(f"rank {r}: causes + residual = {rank_sum} != "
                 f"non-working {nonworking}")

    # The acceptance bar: >= 99% of non-working time carries a cause. The
    # residual is allowed to exist (it must be REPORTED), just not to grow.
    if rep["nonworking_ns"] > 0:
        frac = rep["residual_ns"] / rep["nonworking_ns"]
        if frac > 0.01:
            fail(f"residual is {100 * frac:.2f}% of non-working time "
                 "(bar: 1%)")
        if abs(frac - rep["residual_frac_of_nonworking"]) > 1e-6:
            fail("residual_frac_of_nonworking disagrees with residual_ns")
    if rep["attributed_frac"] < 0.99:
        fail(f"attributed_frac = {rep['attributed_frac']:.4f} < 0.99")

    print(f"validate_report: OK: {sys.argv[1]} -- {rep['nranks']} ranks, "
          f"{rep['sample_points']} samples, {spans['total']} spans, "
          f"attributed {100 * rep['attributed_frac']:.2f}% of "
          f"non-working time")


if __name__ == "__main__":
    main()
