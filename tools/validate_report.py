#!/usr/bin/env python3
"""Validate machine-readable reports against their schema.

Dispatches on the document's "schema" field:

upcws-run-report-v1 (uts_cli --report), structurally and semantically:
  * required keys present with sane types,
  * per-rank entries cover every rank exactly once,
  * causes + residual exactly account for the non-working time,
  * the idle-time autopsy attributed >= 99% of non-working time
    (residual_frac_of_nonworking <= 0.01) -- the PR's acceptance bar.

upcws-soak-summary-v1 (chaos_soak --json):
  * passed + failed == campaigns, engine split sums to campaigns,
  * per-algorithm campaign counts sum to campaigns,
  * one violation entry per failed campaign, each naming the oracle
    that fired and the replay file that reproduces it.

upcws-service-report-v1 (service_soak --json):
  * the four terminal-state counts sum to jobs (every job ended in
    exactly one terminal state), engine/workload/algo splits sum to jobs,
  * typed reject reasons sum to the rejected count,
  * latency percentiles cover exactly the completed jobs and are
    monotone (p50 <= p90 <= p99 <= max),
  * the job-state oracle found no violation and no completed job
    disagreed with its sequential reference.

upcws-service-timeline-v1 (service_soak --report, bench_service --report):
  * outcome counts sum to jobs and per_job has exactly one entry per job,
  * per job AND in aggregate, the five causes + residual exactly account
    for the arrival-to-terminal time,
  * every job with nonzero latency is >= 99% attributed (the residual is
    reported, not hidden), and the aggregate fractions agree with the
    nanosecond totals.

`validate_report.py --self-test` exercises the validator itself against
known-good and deliberately corrupted fixtures of all four schemas.

Stdlib only. Exit 0 on success, 1 with a message on any violation.
"""
import copy
import json
import sys

SCHEMA = "upcws-run-report-v1"
SOAK_SCHEMA = "upcws-soak-summary-v1"
SERVICE_SCHEMA = "upcws-service-report-v1"
TIMELINE_SCHEMA = "upcws-service-timeline-v1"
CAUSES = [
    "victim_miss_search",
    "steal_latency",
    "lock_contention",
    "termination_wait",
    "injected_fault",
    "recovery_replay",
]
TOP_KEYS = {
    "schema": str,
    "nranks": int,
    "sample_ns": int,
    "sample_points": int,
    "spans": dict,
    "dropped_trace_events": int,
    "total_ns": int,
    "working_ns": int,
    "nonworking_ns": int,
    "working_frac": float,
    "attributed_frac": float,
    "residual_ns": int,
    "residual_frac_of_nonworking": float,
    "causes_ns": dict,
    "per_rank": list,
}
SPAN_KEYS = ["total", "completed", "denied", "abandoned", "incomplete",
             "salvaged", "timeouts"]


class ValidationError(Exception):
    """Raised on any schema or invariant violation (so --self-test can
    assert that corrupted fixtures are caught without exiting)."""


def fail(msg):
    raise ValidationError(msg)


def check_causes(obj, where):
    if sorted(obj) != sorted(CAUSES):
        fail(f"{where}: causes_ns keys {sorted(obj)} != {sorted(CAUSES)}")
    for k, v in obj.items():
        if not isinstance(v, int) or v < 0:
            fail(f"{where}: causes_ns[{k}] = {v!r} is not a non-negative int")


SOAK_TOP_KEYS = {
    "schema": str,
    "campaigns": int,
    "passed": int,
    "failed": int,
    "engines": dict,
    "algos": dict,
    "fault_classes": dict,
    "violations": list,
    "elapsed_s": float,
}
SOAK_VIOLATION_KEYS = ["campaign", "engine", "algo", "oracle", "replay",
                       "message"]


def validate_soak(rep, path):
    for key, typ in SOAK_TOP_KEYS.items():
        if key not in rep:
            fail(f"missing key {key!r}")
        val = rep[key]
        if typ is float and isinstance(val, int):
            val = float(val)
        if not isinstance(val, typ):
            fail(f"key {key!r} has type {type(rep[key]).__name__}, "
                 f"want {typ.__name__}")
    n = rep["campaigns"]
    if n < 1:
        fail(f"campaigns = {n}")
    if rep["passed"] + rep["failed"] != n:
        fail(f"passed {rep['passed']} + failed {rep['failed']} != "
             f"campaigns {n}")
    engines = rep["engines"]
    if sorted(engines) != ["sim", "threads"]:
        fail(f"engines keys {sorted(engines)} != ['sim', 'threads']")
    for k, v in engines.items():
        if not isinstance(v, int) or v < 0:
            fail(f"engines[{k}] = {v!r} is not a non-negative int")
    if engines["sim"] + engines["threads"] != n:
        fail(f"engine split {engines['sim']} + {engines['threads']} != "
             f"campaigns {n}")
    for table in ("algos", "fault_classes"):
        for k, v in rep[table].items():
            if not isinstance(v, int) or not 0 <= v <= n:
                fail(f"{table}[{k}] = {v!r} out of range [0, {n}]")
    if not rep["algos"]:
        fail("no algorithms exercised")
    algo_sum = sum(rep["algos"].values())
    if algo_sum != n:
        fail(f"per-algo campaign counts sum to {algo_sum}, "
             f"campaigns is {n}")
    violations = rep["violations"]
    if len(violations) != rep["failed"]:
        fail(f"{len(violations)} violation entries for {rep['failed']} "
             "failed campaigns")
    for i, v in enumerate(violations):
        for k in SOAK_VIOLATION_KEYS:
            if k not in v:
                fail(f"violations[{i}] missing {k!r}")
        if not 0 <= v["campaign"] < n:
            fail(f"violations[{i}]: campaign id {v['campaign']} "
                 f"out of range")
        if v["engine"] not in ("sim", "threads", "psim"):
            fail(f"violations[{i}]: bad engine {v['engine']!r}")
        if not v["oracle"]:
            fail(f"violations[{i}]: empty oracle name")
    if rep["elapsed_s"] < 0:
        fail(f"elapsed_s = {rep['elapsed_s']}")

    print(f"validate_report: OK: {path} -- {n} campaigns "
          f"({engines['threads']} on threads), {rep['passed']} passed, "
          f"{rep['failed']} failed, {len(rep['algos'])} algorithms")


SERVICE_TOP_KEYS = {
    "schema": str,
    "jobs": int,
    "terminal": dict,
    "engines": dict,
    "workloads": dict,
    "algos": dict,
    "reject_reasons": dict,
    "retry_attempts": int,
    "chaos": dict,
    "nodes": dict,
    "latency_ns": dict,
    "queue_depth_max": int,
    "throughput_jobs_per_s": float,
    "oracle": dict,
    "result_mismatches": int,
    "elapsed_s": float,
}
TERMINAL_STATES = ["completed", "rejected", "cancelled", "retries_exhausted"]
LATENCY_KEYS = ["count", "p50", "p90", "p99", "max"]


def check_count_table(obj, where, total, exact=True, nonempty=False):
    for k, v in obj.items():
        if not isinstance(v, int) or not 0 <= v <= total:
            fail(f"{where}[{k}] = {v!r} out of range [0, {total}]")
    if nonempty and not obj:
        fail(f"{where} is empty")
    s = sum(obj.values())
    if exact and s != total:
        fail(f"{where} counts sum to {s}, want {total}")


def validate_service(rep, path):
    for key, typ in SERVICE_TOP_KEYS.items():
        if key not in rep:
            fail(f"missing key {key!r}")
        val = rep[key]
        if typ is float and isinstance(val, int):
            val = float(val)
        if not isinstance(val, typ):
            fail(f"key {key!r} has type {type(rep[key]).__name__}, "
                 f"want {typ.__name__}")
    n = rep["jobs"]
    if n < 1:
        fail(f"jobs = {n}")

    # Every job must land in exactly one terminal state.
    terminal = rep["terminal"]
    if sorted(terminal) != sorted(TERMINAL_STATES):
        fail(f"terminal keys {sorted(terminal)} != {sorted(TERMINAL_STATES)}")
    check_count_table(terminal, "terminal", n)

    engines = rep["engines"]
    if sorted(engines) != ["sim", "threads"]:
        fail(f"engines keys {sorted(engines)} != ['sim', 'threads']")
    check_count_table(engines, "engines", n)
    check_count_table(rep["workloads"], "workloads", n, nonempty=True)
    check_count_table(rep["algos"], "algos", n, nonempty=True)

    # Typed load-shedding: one reason per rejected job.
    check_count_table(rep["reject_reasons"], "reject_reasons",
                      terminal["rejected"])
    for table in ("chaos", "nodes"):
        for k, v in rep[table].items():
            if not isinstance(v, int) or v < 0:
                fail(f"{table}[{k}] = {v!r} is not a non-negative int")

    lat = rep["latency_ns"]
    for k in LATENCY_KEYS:
        if k not in lat or not isinstance(lat[k], int) or lat[k] < 0:
            fail(f"latency_ns.{k} missing or not a non-negative int")
    if lat["count"] != terminal["completed"]:
        fail(f"latency_ns.count {lat['count']} != completed "
             f"{terminal['completed']}")
    if not lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]:
        fail(f"latency percentiles not monotone: p50={lat['p50']} "
             f"p90={lat['p90']} p99={lat['p99']} max={lat['max']}")

    oracle = rep["oracle"]
    if oracle.get("checked") != n:
        fail(f"oracle checked {oracle.get('checked')} of {n} jobs")
    if not isinstance(oracle.get("violations"), list):
        fail("oracle.violations is not a list")
    if oracle["violations"]:
        fail(f"job-state oracle reported {len(oracle['violations'])} "
             f"violation(s): {oracle['violations'][0]}")
    if rep["result_mismatches"] != 0:
        fail(f"{rep['result_mismatches']} completed job(s) disagreed with "
             "the sequential reference")
    if rep["retry_attempts"] < 0 or rep["queue_depth_max"] < 0:
        fail("negative retry_attempts or queue_depth_max")
    if rep["throughput_jobs_per_s"] < 0 or rep["elapsed_s"] < 0:
        fail("negative throughput or elapsed_s")

    print(f"validate_report: OK: {path} -- {n} jobs "
          f"({engines['threads']} on threads), "
          f"{terminal['completed']} completed / "
          f"{terminal['rejected']} rejected / "
          f"{terminal['cancelled']} cancelled / "
          f"{terminal['retries_exhausted']} retries-exhausted, "
          f"p50={lat['p50']} p99={lat['p99']} ns")


TIMELINE_TOP_KEYS = {
    "schema": str,
    "jobs": int,
    "outcomes": dict,
    "total_ns": int,
    "residual_ns": int,
    "attributed_frac": float,
    "min_job_attributed_frac": float,
    "causes_ns": dict,
    "per_job": list,
}
TIMELINE_OUTCOMES = ["completed", "rejected", "cancelled",
                     "retries_exhausted", "unfinished"]
JOB_CAUSES = ["queue_wait", "backoff", "engine_run", "cancel_drain", "shed"]
JOB_KEYS = ["service", "id", "outcome", "attempts", "total_ns", "causes_ns",
            "residual_ns"]


def check_job_causes(obj, where):
    if sorted(obj) != sorted(JOB_CAUSES):
        fail(f"{where}: causes_ns keys {sorted(obj)} != {sorted(JOB_CAUSES)}")
    for k, v in obj.items():
        if not isinstance(v, int) or v < 0:
            fail(f"{where}: causes_ns[{k}] = {v!r} is not a non-negative int")


def validate_timeline(rep, path):
    for key, typ in TIMELINE_TOP_KEYS.items():
        if key not in rep:
            fail(f"missing key {key!r}")
        val = rep[key]
        if typ is float and isinstance(val, int):
            val = float(val)
        if not isinstance(val, typ):
            fail(f"key {key!r} has type {type(rep[key]).__name__}, "
                 f"want {typ.__name__}")
    n = rep["jobs"]
    if n < 1:
        fail(f"jobs = {n}")

    outcomes = rep["outcomes"]
    if sorted(outcomes) != sorted(TIMELINE_OUTCOMES):
        fail(f"outcomes keys {sorted(outcomes)} != "
             f"{sorted(TIMELINE_OUTCOMES)}")
    check_count_table(outcomes, "outcomes", n)
    check_job_causes(rep["causes_ns"], "aggregate")

    per_job = rep["per_job"]
    if len(per_job) != n:
        fail(f"per_job has {len(per_job)} entries for {n} jobs")
    # Per-job exactness, then cross-check the aggregates against the sums.
    total = residual = 0
    causes = {c: 0 for c in JOB_CAUSES}
    valid_outcomes = {"none"} | set(TIMELINE_OUTCOMES) - {"unfinished"}
    for i, job in enumerate(per_job):
        where = f"per_job[{i}]"
        for k in JOB_KEYS:
            if k not in job:
                fail(f"{where} missing {k!r}")
        if job["outcome"] not in valid_outcomes:
            fail(f"{where}: bad outcome {job['outcome']!r}")
        check_job_causes(job["causes_ns"], where)
        attributed = sum(job["causes_ns"].values())
        if attributed + job["residual_ns"] != job["total_ns"]:
            fail(f"{where}: causes + residual = "
                 f"{attributed + job['residual_ns']} != "
                 f"total_ns {job['total_ns']}")
        # The acceptance bar holds per job, not just on average.
        if job["total_ns"] > 0 and \
                job["residual_ns"] / job["total_ns"] > 0.01:
            fail(f"{where}: residual is "
                 f"{100 * job['residual_ns'] / job['total_ns']:.2f}% of its "
                 "latency (bar: 1%)")
        total += job["total_ns"]
        residual += job["residual_ns"]
        for c in JOB_CAUSES:
            causes[c] += job["causes_ns"][c]
    if total != rep["total_ns"]:
        fail(f"per-job totals sum to {total}, total_ns says "
             f"{rep['total_ns']}")
    if residual != rep["residual_ns"]:
        fail(f"per-job residuals sum to {residual}, residual_ns says "
             f"{rep['residual_ns']}")
    if causes != rep["causes_ns"]:
        fail(f"per-job causes sum to {causes}, aggregate says "
             f"{rep['causes_ns']}")
    for key in ("attributed_frac", "min_job_attributed_frac"):
        if not 0.0 <= rep[key] <= 1.0:
            fail(f"{key} = {rep[key]} outside [0, 1]")
    if rep["total_ns"] > 0:
        frac = 1.0 - rep["residual_ns"] / rep["total_ns"]
        if abs(frac - rep["attributed_frac"]) > 1e-6:
            fail("attributed_frac disagrees with residual_ns/total_ns")
    if rep["min_job_attributed_frac"] < 0.99:
        fail(f"min_job_attributed_frac = "
             f"{rep['min_job_attributed_frac']:.4f} < 0.99")

    print(f"validate_report: OK: {path} -- {n} jobs "
          f"({outcomes['completed']} completed / "
          f"{outcomes['rejected']} rejected / "
          f"{outcomes['cancelled']} cancelled / "
          f"{outcomes['retries_exhausted']} retries-exhausted / "
          f"{outcomes['unfinished']} unfinished), attributed "
          f"{100 * rep['attributed_frac']:.2f}% of arrival-to-terminal time")


def validate(rep, path):
    if rep.get("schema") == SOAK_SCHEMA:
        validate_soak(rep, path)
        return
    if rep.get("schema") == SERVICE_SCHEMA:
        validate_service(rep, path)
        return
    if rep.get("schema") == TIMELINE_SCHEMA:
        validate_timeline(rep, path)
        return
    validate_run_report(rep, path)


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    if len(sys.argv) != 2:
        fail("usage: validate_report.py report.json | --self-test")
    try:
        with open(sys.argv[1]) as f:
            rep = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")
    validate(rep, sys.argv[1])


def validate_run_report(rep, path):
    for key, typ in TOP_KEYS.items():
        if key not in rep:
            fail(f"missing key {key!r}")
        val = rep[key]
        if typ is float and isinstance(val, int):
            val = float(val)  # JSON integers are valid doubles
        if not isinstance(val, typ):
            fail(f"key {key!r} has type {type(rep[key]).__name__}, "
                 f"want {typ.__name__}")
    if rep["schema"] != SCHEMA:
        fail(f"schema {rep['schema']!r} != {SCHEMA!r}")
    if rep["nranks"] < 1:
        fail(f"nranks = {rep['nranks']}")

    spans = rep["spans"]
    for k in SPAN_KEYS:
        if k not in spans or not isinstance(spans[k], int) or spans[k] < 0:
            fail(f"spans.{k} missing or not a non-negative int")
    accounted = (spans["completed"] + spans["denied"] + spans["abandoned"]
                 + spans["incomplete"])
    if accounted != spans["total"]:
        fail(f"span outcomes sum to {accounted}, total says {spans['total']}")

    check_causes(rep["causes_ns"], "aggregate")
    if rep["working_ns"] + rep["nonworking_ns"] != rep["total_ns"]:
        fail("working_ns + nonworking_ns != total_ns")
    cause_sum = sum(rep["causes_ns"].values()) + rep["residual_ns"]
    if cause_sum != rep["nonworking_ns"]:
        fail(f"causes + residual = {cause_sum} != "
             f"nonworking_ns {rep['nonworking_ns']}")

    per_rank = rep["per_rank"]
    if len(per_rank) != rep["nranks"]:
        fail(f"per_rank has {len(per_rank)} entries for {rep['nranks']} ranks")
    seen = set()
    for entry in per_rank:
        for k in ("rank", "total_ns", "working_ns", "causes_ns",
                  "residual_ns"):
            if k not in entry:
                fail(f"per_rank entry missing {k!r}")
        r = entry["rank"]
        if r in seen or not 0 <= r < rep["nranks"]:
            fail(f"bad or duplicate rank id {r}")
        seen.add(r)
        check_causes(entry["causes_ns"], f"rank {r}")
        nonworking = entry["total_ns"] - entry["working_ns"]
        rank_sum = sum(entry["causes_ns"].values()) + entry["residual_ns"]
        if rank_sum != nonworking:
            fail(f"rank {r}: causes + residual = {rank_sum} != "
                 f"non-working {nonworking}")

    # The acceptance bar: >= 99% of non-working time carries a cause. The
    # residual is allowed to exist (it must be REPORTED), just not to grow.
    if rep["nonworking_ns"] > 0:
        frac = rep["residual_ns"] / rep["nonworking_ns"]
        if frac > 0.01:
            fail(f"residual is {100 * frac:.2f}% of non-working time "
                 "(bar: 1%)")
        if abs(frac - rep["residual_frac_of_nonworking"]) > 1e-6:
            fail("residual_frac_of_nonworking disagrees with residual_ns")
    if rep["attributed_frac"] < 0.99:
        fail(f"attributed_frac = {rep['attributed_frac']:.4f} < 0.99")

    print(f"validate_report: OK: {path} -- {rep['nranks']} ranks, "
          f"{rep['sample_points']} samples, {spans['total']} spans, "
          f"attributed {100 * rep['attributed_frac']:.2f}% of "
          f"non-working time")


def _fixture_run_report():
    causes = {c: 0 for c in CAUSES}
    return {
        "schema": SCHEMA, "nranks": 1, "sample_ns": 100, "sample_points": 4,
        "spans": {"total": 2, "completed": 1, "denied": 1, "abandoned": 0,
                  "incomplete": 0, "salvaged": 0, "timeouts": 0},
        "dropped_trace_events": 0, "total_ns": 1000, "working_ns": 1000,
        "nonworking_ns": 0, "working_frac": 1.0, "attributed_frac": 1.0,
        "residual_ns": 0, "residual_frac_of_nonworking": 0.0,
        "causes_ns": dict(causes),
        "per_rank": [{"rank": 0, "total_ns": 1000, "working_ns": 1000,
                      "causes_ns": dict(causes), "residual_ns": 0}],
    }


def _fixture_soak():
    return {
        "schema": SOAK_SCHEMA, "campaigns": 2, "passed": 1, "failed": 1,
        "engines": {"sim": 2, "threads": 0},
        "algos": {"upc-term": 1, "mpi-ws": 1},
        "fault_classes": {"crashes": 1},
        "violations": [{"campaign": 0, "engine": "sim", "algo": "upc-term",
                        "oracle": "node-count", "replay": "r.json",
                        "message": "boom"}],
        "elapsed_s": 0.5,
    }


def _fixture_service():
    return {
        "schema": SERVICE_SCHEMA, "jobs": 4,
        "terminal": {"completed": 2, "rejected": 1, "cancelled": 1,
                     "retries_exhausted": 0},
        "engines": {"sim": 3, "threads": 1},
        "workloads": {"uts": 3, "knapsack": 1},
        "algos": {"upc-term": 2, "work-push": 2},
        "reject_reasons": {"queue-full": 1},
        "retry_attempts": 1, "chaos": {"crashes": 1, "drains": 0},
        "nodes": {"visited": 900, "reclaimed": 25},
        "latency_ns": {"count": 2, "p50": 10, "p90": 20, "p99": 20,
                       "max": 20},
        "queue_depth_max": 3, "throughput_jobs_per_s": 2.0,
        "oracle": {"checked": 4, "violations": []},
        "result_mismatches": 0, "elapsed_s": 0.1,
    }


def _fixture_timeline():
    def job(i, outcome, total, causes, residual=0, attempts=1):
        c = {k: 0 for k in JOB_CAUSES}
        c.update(causes)
        return {"service": 0, "id": i, "outcome": outcome,
                "attempts": attempts, "total_ns": total, "causes_ns": c,
                "residual_ns": residual}

    per_job = [
        job(0, "completed", 100, {"queue_wait": 40, "engine_run": 60}),
        job(1, "cancelled", 200, {"engine_run": 150, "cancel_drain": 50},
            attempts=1),
        job(2, "rejected", 10, {"shed": 10}, attempts=0),
        job(3, "retries_exhausted", 300,
            {"queue_wait": 50, "engine_run": 200, "backoff": 50},
            attempts=2),
    ]
    causes = {k: 0 for k in JOB_CAUSES}
    for j in per_job:
        for k in JOB_CAUSES:
            causes[k] += j["causes_ns"][k]
    return {
        "schema": TIMELINE_SCHEMA, "jobs": 4,
        "outcomes": {"completed": 1, "rejected": 1, "cancelled": 1,
                     "retries_exhausted": 1, "unfinished": 0},
        "total_ns": 610, "residual_ns": 0, "attributed_frac": 1.0,
        "min_job_attributed_frac": 1.0, "causes_ns": causes,
        "per_job": per_job,
    }


def self_test():
    """Known-good fixtures must pass; each corruption must be caught."""
    fixtures = {
        "run-report": _fixture_run_report,
        "soak": _fixture_soak,
        "service": _fixture_service,
        "timeline": _fixture_timeline,
    }
    for name, make in fixtures.items():
        validate(make(), f"<self-test {name}>")

    def corrupt(fix, mutate):
        doc = copy.deepcopy(fix())
        mutate(doc)
        return doc

    bad = [
        ("run: attribution bar", _fixture_run_report,
         lambda d: d.update(nonworking_ns=500, working_ns=500,
                            residual_ns=500, attributed_frac=0.5,
                            residual_frac_of_nonworking=1.0)),
        ("run: span outcomes", _fixture_run_report,
         lambda d: d["spans"].update(completed=2)),
        ("soak: pass/fail split", _fixture_soak,
         lambda d: d.update(passed=2)),
        ("soak: missing violation entry", _fixture_soak,
         lambda d: d.update(violations=[])),
        ("service: terminal sum", _fixture_service,
         lambda d: d["terminal"].update(completed=3)),
        ("service: engine split", _fixture_service,
         lambda d: d["engines"].update(sim=4)),
        ("service: latency count", _fixture_service,
         lambda d: d["latency_ns"].update(count=3)),
        ("service: non-monotone percentiles", _fixture_service,
         lambda d: d["latency_ns"].update(p50=30)),
        ("service: reject reasons", _fixture_service,
         lambda d: d["reject_reasons"].update({"shutdown": 1})),
        ("service: oracle violation", _fixture_service,
         lambda d: d["oracle"]["violations"].append("rank leak")),
        ("service: reference mismatch", _fixture_service,
         lambda d: d.update(result_mismatches=1)),
        ("service: missing key", _fixture_service,
         lambda d: d.pop("nodes")),
        ("timeline: outcome sum", _fixture_timeline,
         lambda d: d["outcomes"].update(completed=2)),
        ("timeline: per-job count", _fixture_timeline,
         lambda d: d["per_job"].pop()),
        ("timeline: job accounting", _fixture_timeline,
         lambda d: d["per_job"][0]["causes_ns"].update(engine_run=50)),
        ("timeline: hidden residual", _fixture_timeline,
         lambda d: (d["per_job"][0]["causes_ns"].update(engine_run=30),
                    d["per_job"][0].update(residual_ns=30),
                    d.update(residual_ns=30, causes_ns={
                        **d["causes_ns"],
                        "engine_run": d["causes_ns"]["engine_run"] - 30}))),
        ("timeline: aggregate cause drift", _fixture_timeline,
         lambda d: d["causes_ns"].update(
             queue_wait=d["causes_ns"]["queue_wait"] + 1)),
        ("timeline: bad outcome", _fixture_timeline,
         lambda d: d["per_job"][0].update(outcome="evaporated")),
        ("timeline: attribution bar", _fixture_timeline,
         lambda d: d.update(min_job_attributed_frac=0.5)),
        ("timeline: unknown cause key", _fixture_timeline,
         lambda d: d["per_job"][0]["causes_ns"].update(gc_pause=0)),
        ("timeline: missing key", _fixture_timeline,
         lambda d: d.pop("min_job_attributed_frac")),
    ]
    for name, fix, mutate in bad:
        try:
            validate(corrupt(fix, mutate), f"<self-test {name}>")
        except ValidationError:
            continue
        print(f"validate_report: SELF-TEST FAIL: corruption {name!r} "
              "was not caught", file=sys.stderr)
        sys.exit(1)
    print(f"validate_report: self-test OK: {len(fixtures)} schemas, "
          f"{len(bad)} corruptions caught")


if __name__ == "__main__":
    try:
        main()
    except ValidationError as e:
        print(f"validate_report: FAIL: {e}", file=sys.stderr)
        sys.exit(1)
