// chaos_soak: randomized fault/membership campaigns over every algorithm
// and both engines — the robustness gate for elastic membership and
// partition tolerance (docs/fault_injection.md).
//
// Each campaign draws a random configuration (algorithm, ranks, chunk, net,
// tree) and a random *valid* fault plan mixing transient stalls, message
// drops/duplications, fail-stop crashes, graceful drains, mid-run joins,
// and correlated network partitions, then runs it to completion and checks:
//
//   * the traversal visited the sequential-reference node count exactly
//     (exactly-once despite crashes, drains, partitions);
//   * no invariant oracle fired (sim engine: the full schedule-checker
//     battery probes every scheduling step, including membership-safety);
//   * no hang (the virtual-time watchdog converts livelock to a violation).
//
// Failing sim campaigns are delta-debugged down to a minimal decision trail
// and saved as `upcws-replay v1` files (re-run with uts_cli --replay or
// schedule_check --replay). A machine-readable summary is written as JSON
// (schema upcws-soak-summary-v1, validated by tools/validate_report.py).
//
// Plan-validity constraints (so every campaign is *supposed* to pass):
//   * rank 0 never crashes, drains, or joins (it seeds the root);
//   * a rank plays at most one membership role (crasher XOR drainer XOR
//     joiner) and crashers+drainers <= nranks-2 (work must survive);
//   * work-push excludes crashes and message faults (no recovery protocol
//     for them by design — it is the paper's push baseline);
//   * message drops/dups only on mpi-ws (the only two-sided variant);
//   * partitions heal well inside the watchdog window.
//
// Flags:
//   --campaigns N   campaigns to run (default 240)
//   --seed S        generator seed (default 1)
//   --threads-every N  every Nth campaign runs on the real-thread engine
//                   (node-count check only; 0 = sim only; default 8); those
//                   campaigns also re-run on the parallel PDES engine (psim)
//                   as a differential node-count check
//   --workers N     psim worker threads for the differential re-run
//                   (default: hardware concurrency)
//   --nranks N      pin every campaign to N ranks (default: random 4..8)
//   --algo LABEL    pin every campaign to one algorithm (default: rotate
//                   through the canonical kAllAlgosExtended list)
//   --sample-frac F sampling policy: fraction of ranks probed per round
//   --quantile Q    sampling policy: load quantile stolen from
//   --lifeline-dim D  lifeline policy: hypercube dimension cap
//   --crash R@NS    force this fail-stop into every campaign (except
//                   work-push, which excludes crashes by design); requires
//                   --nranks so R can be validated against the run shape
//   --drain R@NS    force this graceful leave into every campaign
//   --join R@NS     force this late join into every campaign
//   --psim          attach an observer to the psim differential re-runs and
//                   aggregate the PDES window telemetry across the soak
//                   (pure observation: outcomes are unchanged)
//   --psim-window-metrics  print the aggregated window/fallback telemetry at
//                   the end; requires --psim (nothing is collected without it)
//   --json FILE     write the upcws-soak-summary-v1 JSON summary
//   --replay-dir D  directory for shrunk failure replays (default ".")
//   --budget-smoke  bounded CI mode: 60 campaigns, smoke-sized budgets
//   -v              per-campaign progress lines
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/checker.hpp"
#include "check/replay.hpp"
#include "check/strategies.hpp"
#include "obs/observer.hpp"
#include "pgas/thread_engine.hpp"
#include "psim/engine.hpp"
#include "uts/sequential.hpp"
#include "ws/driver.hpp"
#include "ws/uts_problem.hpp"

using namespace upcws;

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "chaos_soak: %s (see header comment for flags)\n",
               msg.c_str());
  std::exit(2);
}

/// Strict nonnegative integer: rejects "-5" (which atoll/atoi would wrap
/// or accept silently) and trailing junk.
std::uint64_t parse_u64(const char* s, const char* flag) {
  if (s == nullptr || *s == '\0' || *s == '-')
    usage(std::string(flag) + " wants a nonnegative integer");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0')
    usage(std::string(flag) + " wants a nonnegative integer");
  return static_cast<std::uint64_t>(v);
}

/// "RANK@NS" for the forced-fault flags, rejecting negatives outright.
std::pair<int, std::uint64_t> parse_rank_at(const std::string& spec,
                                            const char* flag) {
  const std::string want = std::string("bad ") + flag + " spec (want RANK@NS)";
  if (spec.find('-') != std::string::npos) usage(want);
  int rank = -1;
  unsigned long long at = 0;
  int consumed = 0;
  if (std::sscanf(spec.c_str(), "%d@%llu%n", &rank, &at, &consumed) < 2 ||
      spec[static_cast<std::size_t>(consumed)] != '\0')
    usage(want);
  return {rank, static_cast<std::uint64_t>(at)};
}

/// One campaign's random draw: a CheckSpec plus which fault classes it
/// includes and which engine runs it.
struct Campaign {
  check::CheckSpec spec;
  bool threads = false;       ///< real-thread engine (node count only)
  std::uint64_t sched_seed = 0;  ///< random-walk schedule seed (sim)
};

struct Failure {
  int campaign = -1;
  std::string engine;
  std::string algo;
  std::string oracle;
  std::string message;
  std::string replay;  ///< saved replay path ("" for threads campaigns)
};

/// Valid-by-construction campaign generator. All randomness flows from one
/// per-campaign mt19937_64, so a campaign index + seed reproduces the draw.
/// pin_algo (when set) replaces the algorithm draw *before* the fault plan
/// is drawn, so algorithm-specific validity rules still apply.
Campaign draw_campaign(std::uint64_t seed, int index, int threads_every,
                       int pin_nranks, const ws::Algo* pin_algo) {
  std::mt19937_64 g(seed + static_cast<std::uint64_t>(index) *
                               0x9E3779B97F4A7C15ull);
  auto pick = [&g](int lo, int hi) {  // inclusive
    return lo + static_cast<int>(g() % static_cast<std::uint64_t>(
                                           hi - lo + 1));
  };
  auto chance = [&g](int pct) { return static_cast<int>(g() % 100) < pct; };

  Campaign c;
  check::CheckSpec& s = c.spec;
  // Draw from THE canonical list (config.hpp) so a newly appended variant
  // joins the rotation without touching this file.
  s.algo = ws::kAllAlgosExtended[static_cast<std::size_t>(pick(
      0, static_cast<int>(std::size(ws::kAllAlgosExtended)) - 1))];
  if (pin_algo != nullptr) s.algo = *pin_algo;
  s.nranks = pin_nranks > 0 ? pin_nranks : pick(4, 8);
  s.chunk = pick(1, 4);
  s.net = chance(70) ? "dist" : (chance(50) ? "shared" : "smp2");
  const std::uint32_t root = static_cast<std::uint32_t>(pick(0, 7));
  s.tree = chance(75) ? uts::test_small(root)
           : chance(50) ? uts::geo_test(root)
                        : uts::hybrid_test(root);
  s.run_seed = g() % 1000 + 1;
  s.steal_timeout_ns = 30'000;  // always hardened: faults are always live
  s.watchdog_ns = 400'000'000;
  c.threads = threads_every > 0 && index % threads_every == threads_every - 1;
  c.sched_seed = g();

  const bool push = s.algo == ws::Algo::kWorkPush;
  const bool mpi = s.algo == ws::Algo::kMpiWs;

  // Membership roles: partition the eligible ranks {1..n-1} among crashers,
  // drainers, and joiners, capping leavers at nranks-2.
  std::vector<int> eligible;
  for (int r = 1; r < s.nranks; ++r) eligible.push_back(r);
  std::shuffle(eligible.begin(), eligible.end(), g);
  int leavers_left = s.nranks - 2;
  std::size_t e = 0;

  const int ncrash = push ? 0 : pick(0, 2);
  for (int i = 0; i < ncrash && leavers_left > 0 && e < eligible.size(); ++i) {
    pgas::CrashSpec cs;
    cs.rank = eligible[e++];
    cs.at_ns = static_cast<std::uint64_t>(pick(10, 120)) * 1000;
    cs.where = chance(70)   ? pgas::CrashSpec::Where::kAnywhere
               : chance(50) ? pgas::CrashSpec::Where::kInLock
                            : pgas::CrashSpec::Where::kMidSteal;
    s.crashes.push_back(cs);
    --leavers_left;
  }
  const int ndrain = pick(0, 2);
  for (int i = 0; i < ndrain && leavers_left > 0 && e < eligible.size(); ++i) {
    s.drains.push_back(
        {eligible[e++], static_cast<std::uint64_t>(pick(10, 150)) * 1000});
    --leavers_left;
  }
  const int njoin = pick(0, 2);
  for (int i = 0; i < njoin && e < eligible.size(); ++i) {
    s.joins.push_back(
        {eligible[e++], static_cast<std::uint64_t>(pick(5, 80)) * 1000});
  }

  // Transient faults. Stall windows sized to virtual-time runs (~100us-10ms).
  if (chance(35)) {
    s.stall_ns = static_cast<std::uint64_t>(pick(2, 20)) * 1000;
    s.stall_period_ns = s.stall_ns * static_cast<std::uint64_t>(pick(3, 10));
    s.stall_rank = chance(50) ? -1 : pick(0, s.nranks - 1);
  }
  if (mpi && chance(40)) {
    s.drop_prob = pick(1, 10) / 100.0;
    s.dup_prob = pick(1, 10) / 100.0;
  }

  // Correlated partition: random bipartition with both sides nonempty,
  // healing long before the watchdog.
  if (chance(35)) {
    pgas::PartitionSpec ps;
    do {
      ps.group_mask = g() & ((1ull << s.nranks) - 1);
    } while (ps.group_mask == 0 ||
             ps.group_mask == (1ull << s.nranks) - 1);
    ps.start_ns = static_cast<std::uint64_t>(pick(10, 60)) * 1000;
    ps.heal_ns = ps.start_ns + static_cast<std::uint64_t>(pick(10, 120)) * 1000;
    s.partitions.push_back(ps);
  }
  return c;
}

/// Real-engine campaign (threads or psim): no schedule policy or step
/// oracles, but the exactly-once count and membership counters must hold.
check::RunOutcome run_real(pgas::Engine& eng, const check::CheckSpec& s,
                           obs::Observer* obs = nullptr) {
  check::RunOutcome out;
  pgas::RunConfig rc;
  rc.nranks = s.nranks;
  rc.net = check::net_by_name(s.net);
  rc.seed = s.run_seed;
  rc.faults.stall_ns = s.stall_ns;
  rc.faults.stall_period_ns = s.stall_period_ns;
  rc.faults.stall_rank = s.stall_rank;
  rc.faults.drop_prob = s.drop_prob;
  rc.faults.dup_prob = s.dup_prob;
  rc.faults.crashes = s.crashes;
  rc.faults.crash_detect_ns = s.crash_detect_ns;
  rc.faults.drains = s.drains;
  rc.faults.joins = s.joins;
  rc.faults.partitions = s.partitions;

  const ws::UtsProblem prob(s.tree);
  ws::WsConfig cfg = ws::WsConfig::for_algo(s.algo, s.chunk);
  cfg.steal_timeout_ns = s.steal_timeout_ns;
  cfg.sample_frac = s.sample_frac;
  cfg.quantile = s.quantile;
  cfg.lifeline_dim = s.lifeline_dim;
  cfg.obs = obs;  // pure observation: attaching it cannot change the outcome
  const ws::SearchResult res = ws::run_search(eng, rc, prob, cfg);
  out.completed = true;
  out.nodes = res.agg.total_nodes;
  const std::uint64_t want = check::expected_nodes(s);
  if (res.agg.total_nodes != want) {
    out.violated = true;
    out.oracle = "node-conservation";
    std::ostringstream os;
    os << eng.name() << " engine visited " << res.agg.total_nodes
       << " nodes, sequential reference is " << want;
    out.message = os.str();
  } else if (res.agg.total_faults_drains > s.drains.size() ||
             res.agg.total_faults_joins > s.joins.size()) {
    out.violated = true;
    out.oracle = "membership-safety";
    out.message = "membership counters exceed the plan";
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string o;
  o.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') (o += '\\') += c;
    else if (c == '\n') o += "\\n";
    else if (static_cast<unsigned char>(c) < 0x20) o += ' ';
    else o += c;
  }
  return o;
}

void write_summary(std::ostream& os, int campaigns, int threads_runs,
                   const std::map<std::string, int>& algo_runs,
                   const std::map<std::string, int>& fault_runs,
                   const std::vector<Failure>& failures, double elapsed_s) {
  os << "{\n  \"schema\": \"upcws-soak-summary-v1\",\n";
  os << "  \"campaigns\": " << campaigns << ",\n";
  os << "  \"passed\": " << campaigns - static_cast<int>(failures.size())
     << ",\n";
  os << "  \"failed\": " << failures.size() << ",\n";
  os << "  \"engines\": {\"sim\": " << campaigns - threads_runs
     << ", \"threads\": " << threads_runs << "},\n";
  os << "  \"algos\": {";
  bool first = true;
  for (const auto& [k, v] : algo_runs) {
    os << (first ? "" : ", ") << "\"" << k << "\": " << v;
    first = false;
  }
  os << "},\n  \"fault_classes\": {";
  first = true;
  for (const auto& [k, v] : fault_runs) {
    os << (first ? "" : ", ") << "\"" << k << "\": " << v;
    first = false;
  }
  os << "},\n  \"violations\": [";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const Failure& f = failures[i];
    os << (i > 0 ? "," : "") << "\n    {\"campaign\": " << f.campaign
       << ", \"engine\": \"" << f.engine << "\", \"algo\": \"" << f.algo
       << "\", \"oracle\": \"" << json_escape(f.oracle)
       << "\", \"replay\": \"" << json_escape(f.replay)
       << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (failures.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"elapsed_s\": " << elapsed_s << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  int campaigns = 240;
  std::uint64_t seed = 1;
  int threads_every = 8;
  int workers = 0;  // psim differential threads; 0 = hardware concurrency
  bool workers_set = false;
  int pin_nranks = 0;  // 0 = random per campaign
  bool nranks_set = false;
  ws::Algo pin_algo{};  // valid only when algo_set
  bool algo_set = false;
  double sample_frac = -1.0;  // < 0 = keep the config default
  double quantile = -1.0;
  int lifeline_dim = -1;
  std::vector<pgas::CrashSpec> forced_crashes;
  std::vector<pgas::DrainSpec> forced_drains;
  std::vector<pgas::JoinSpec> forced_joins;
  std::string json_path, replay_dir = ".";
  bool psim_obs = false;
  bool psim_window_metrics = false;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing value for " + a);
      return argv[++i];
    };
    if (a == "--campaigns")
      campaigns = static_cast<int>(parse_u64(next(), "--campaigns"));
    else if (a == "--seed")
      seed = parse_u64(next(), "--seed");
    else if (a == "--threads-every")
      threads_every = static_cast<int>(parse_u64(next(), "--threads-every"));
    else if (a == "--workers") {
      workers = static_cast<int>(parse_u64(next(), "--workers"));
      workers_set = true;
    }
    else if (a == "--nranks") {
      pin_nranks = static_cast<int>(parse_u64(next(), "--nranks"));
      nranks_set = true;
    }
    else if (a == "--algo") {
      try {
        pin_algo = check::algo_from_label(next());
      } catch (const std::exception& e) {
        usage(e.what());
      }
      algo_set = true;
    }
    else if (a == "--sample-frac")
      sample_frac = std::atof(next());
    else if (a == "--quantile")
      quantile = std::atof(next());
    else if (a == "--lifeline-dim")
      lifeline_dim = static_cast<int>(parse_u64(next(), "--lifeline-dim"));
    else if (a == "--crash") {
      const auto [r, at] = parse_rank_at(next(), "--crash");
      pgas::CrashSpec cs;
      cs.rank = r;
      cs.at_ns = at;
      forced_crashes.push_back(cs);
    } else if (a == "--drain") {
      const auto [r, at] = parse_rank_at(next(), "--drain");
      forced_drains.push_back(pgas::DrainSpec{r, at});
    } else if (a == "--join") {
      const auto [r, at] = parse_rank_at(next(), "--join");
      forced_joins.push_back(pgas::JoinSpec{r, at});
    } else if (a == "--json")
      json_path = next();
    else if (a == "--psim")
      psim_obs = true;
    else if (a == "--psim-window-metrics")
      psim_window_metrics = true;
    else if (a == "--replay-dir")
      replay_dir = next();
    else if (a == "--budget-smoke")
      campaigns = 60;
    else if (a == "-v")
      verbose = true;
    else
      usage("unknown flag " + a);
  }
  if (campaigns < 1) usage("--campaigns wants at least 1");
  if (psim_window_metrics && !psim_obs)
    usage("--psim-window-metrics requires --psim (nothing is collected "
          "without the observed psim differential)");
  if (nranks_set && (pin_nranks < 2 || pin_nranks > 16))
    usage("--nranks wants 2..16 ranks");
  if (sample_frac != -1.0 && (!(sample_frac > 0.0) || sample_frac > 1.0))
    usage("--sample-frac wants a value in (0,1]");
  if (quantile != -1.0 && (quantile < 0.0 || quantile > 1.0))
    usage("--quantile wants a value in [0,1]");
  if (workers_set) {
    const unsigned hc = std::thread::hardware_concurrency();
    const int max_workers = hc > 0 ? static_cast<int>(hc) : 1;
    if (workers < 1 || workers > max_workers)
      usage("--workers wants a thread count in [1," +
            std::to_string(max_workers) + "] (hardware concurrency)");
  }
  // Forced fault flags are validated against the run shape before any
  // campaign runs: a bad rank dies here with one line, not 60 campaigns in.
  const bool any_forced = !forced_crashes.empty() || !forced_drains.empty() ||
                          !forced_joins.empty();
  if (any_forced && pin_nranks == 0)
    usage("--crash/--drain/--join need --nranks to validate ranks against");
  auto check_rank = [&](const char* flag, int r) {
    if (r < 1 || r >= pin_nranks)
      usage(std::string(flag) + " rank " + std::to_string(r) +
            " out of range [1," + std::to_string(pin_nranks) +
            ") (rank 0 seeds the root)");
  };
  for (const auto& c : forced_crashes) check_rank("--crash", c.rank);
  for (const auto& d : forced_drains) check_rank("--drain", d.rank);
  for (const auto& j : forced_joins) check_rank("--join", j.rank);
  if (pin_nranks != 0 &&
      forced_crashes.size() + forced_drains.size() >
          static_cast<std::size_t>(pin_nranks - 2))
    usage("forced crashes+drains exceed nranks-2 (work must survive)");

  const auto oracles = check::default_oracles();
  std::map<std::string, int> algo_runs, fault_runs;
  std::vector<Failure> failures;
  int threads_runs = 0;
  // --psim telemetry, aggregated across every observed differential re-run.
  // The observer is reused (start_run resets its per-run state; the fallback
  // tally deliberately survives so reasons accumulate soak-wide).
  obs::Observer pobs;
  int psim_runs = 0;
  std::uint64_t psim_total_windows = 0, psim_total_events = 0;
  const auto t0 = std::chrono::steady_clock::now();

  for (int i = 0; i < campaigns; ++i) {
    Campaign c = draw_campaign(seed, i, threads_every, pin_nranks,
                               algo_set ? &pin_algo : nullptr);
    check::CheckSpec& s = c.spec;
    if (sample_frac >= 0.0) s.sample_frac = sample_frac;
    if (quantile >= 0.0) s.quantile = quantile;
    if (lifeline_dim >= 0) s.lifeline_dim = lifeline_dim;
    if (any_forced) {
      // Forced membership faults replace any drawn role on the same rank
      // (one role per rank), and keep the valid-by-construction rules:
      // work-push excludes crashes by design.
      auto claimed = [&](int r) {
        for (const auto& fc : forced_crashes)
          if (fc.rank == r) return true;
        for (const auto& fd : forced_drains)
          if (fd.rank == r) return true;
        for (const auto& fj : forced_joins)
          if (fj.rank == r) return true;
        return false;
      };
      std::erase_if(s.crashes,
                    [&](const pgas::CrashSpec& cs) { return claimed(cs.rank); });
      std::erase_if(s.drains,
                    [&](const pgas::DrainSpec& d) { return claimed(d.rank); });
      std::erase_if(s.joins,
                    [&](const pgas::JoinSpec& j) { return claimed(j.rank); });
      if (s.algo != ws::Algo::kWorkPush)
        for (const auto& fc : forced_crashes) s.crashes.push_back(fc);
      for (const auto& fd : forced_drains) s.drains.push_back(fd);
      for (const auto& fj : forced_joins) s.joins.push_back(fj);
    }
    ++algo_runs[ws::algo_label(s.algo)];
    if (s.stall_ns > 0) ++fault_runs["stalls"];
    if (s.drop_prob > 0) ++fault_runs["drops"];
    if (s.dup_prob > 0) ++fault_runs["dups"];
    if (!s.crashes.empty()) ++fault_runs["crashes"];
    if (!s.drains.empty()) ++fault_runs["drains"];
    if (!s.joins.empty()) ++fault_runs["joins"];
    if (!s.partitions.empty()) ++fault_runs["partitions"];

    check::RunOutcome o;
    const char* engine = c.threads ? "threads" : "sim";
    if (c.threads) {
      ++threads_runs;
      pgas::ThreadEngine teng;
      o = run_real(teng, s);
      if (!o.violated) {
        // Differential: the same campaign on the parallel PDES engine must
        // also conserve nodes (falls back to the sequential simulator when
        // the plan is not parallel-eligible, which is still a valid check).
        psim::PsimEngine peng(workers);
        check::RunOutcome po =
            run_real(peng, s, psim_obs ? &pobs : nullptr);
        if (psim_obs) {
          ++psim_runs;
          psim_total_windows += pobs.psim_windows().size();
          for (const auto& w : pobs.psim_windows())
            psim_total_events += w.events;
        }
        if (po.violated) {
          o = po;
          engine = "psim";
        }
      }
    } else {
      check::RandomWalkPolicy rp(c.sched_seed);
      o = check::run_schedule(s, &rp, 100'000, &oracles);
    }
    if (verbose)
      std::printf("campaign %3d: %-15s %s n=%d c=%d %s  crashes=%zu "
                  "drains=%zu joins=%zu partitions=%zu  -> %s\n",
                  i, ws::algo_label(s.algo), engine, s.nranks, s.chunk,
                  s.net.c_str(), s.crashes.size(), s.drains.size(),
                  s.joins.size(), s.partitions.size(),
                  o.violated ? o.oracle.c_str() : "ok");
    if (!o.violated) continue;

    Failure f;
    f.campaign = i;
    f.engine = engine;
    f.algo = ws::algo_label(s.algo);
    f.oracle = o.oracle;
    f.message = o.message;
    if (!c.threads) {
      // Shrink the failing schedule and save a deterministic reproduction.
      int shrink_runs = 0;
      check::ReplayFile rf;
      rf.spec = s;
      rf.window_ns = 100'000;
      rf.oracle = o.oracle;
      rf.trail = check::shrink_trail(s, 100'000, o.oracle, o.choices, 200,
                                     &shrink_runs);
      f.replay = replay_dir + "/chaos_" + std::to_string(i) + ".replay";
      check::save_replay(f.replay, rf);
      std::printf("campaign %d FAILED (%s: %s)\n  shrunk in %d runs -> %s\n",
                  i, f.oracle.c_str(), f.message.c_str(), shrink_runs,
                  f.replay.c_str());
    } else {
      std::printf("campaign %d FAILED on %s engine (%s: %s)\n", i, engine,
                  f.oracle.c_str(), f.message.c_str());
    }
    failures.push_back(std::move(f));
  }

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("chaos_soak: %d campaigns (%d on threads), %zu failures, "
              "%.1fs\n",
              campaigns, threads_runs, failures.size(), elapsed_s);
  for (const auto& [k, v] : fault_runs)
    std::printf("  %-11s in %d campaigns\n", k.c_str(), v);
  if (psim_window_metrics) {
    std::printf("psim telemetry: %d observed differentials  %llu windows  "
                "%llu events\n",
                psim_runs,
                static_cast<unsigned long long>(psim_total_windows),
                static_cast<unsigned long long>(psim_total_events));
    for (const auto& [reason, count] : pobs.psim_fallbacks())
      std::printf("  serial-lane fallback (%s) in %llu re-runs\n",
                  reason.c_str(), static_cast<unsigned long long>(count));
  }

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) usage("cannot write --json " + json_path);
    write_summary(f, campaigns, threads_runs, algo_runs, fault_runs,
                  failures, elapsed_s);
    std::printf("wrote summary to %s\n", json_path.c_str());
  }
  return failures.empty() ? 0 : 1;
}
