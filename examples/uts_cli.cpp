// uts_cli: a command-line UTS runner in the spirit of the original
// benchmark's driver — pick a tree, an algorithm, an engine, and a network
// model from the command line; get the paper's metrics back.
//
// Examples:
//   ./uts_cli                                   # defaults
//   ./uts_cli -t 1 -b 2000 -q 0.4995 -r 5 -n 32 -c 10 -A upc-distmem
//   ./uts_cli -A mpi-ws --net shmem -n 8 -v
//   ./uts_cli -e threads -n 4 --net free
//
// Flags:
//   -t 0|1        tree type: 0 geometric, 1 binomial (default 1)
//   -b B          root branching factor b0 (default 2000)
//   -q Q          binomial non-leaf probability (default 0.4995)
//   -m M          binomial non-leaf child count (default 2)
//   -g G          geometric depth horizon gen_mx (default 8)
//   -r R          root seed (default 5)
//   -A LABEL      upc-sharedmem|upc-term|upc-term-rapdif|upc-distmem|mpi-ws
//   -n N          ranks / simulated UPC threads (default 16)
//   -c K          chunk size (default 10)
//   -i I          poll interval in nodes (default 1)
//   --sample-frac F  sampling variant: fraction of the other ranks a thief
//                 probes per selection round, in (0,1] (default 0.5)
//   --quantile Q  sampling variant: load quantile of the sampled victims
//                 to steal from, in [0,1] (default 0.8)
//   --lifeline-dim D  lifeline variant: cap on hypercube lifeline
//                 dimensions (0 = all ceil(log2 n); default 0)
//   -e ENGINE     sim|psim|threads (default sim). psim is the parallel
//                 PDES engine: same virtual-time semantics and
//                 byte-identical output as sim, executed on multiple OS
//                 worker threads (docs/simulator.md)
//   --workers N   psim only: OS worker threads driving the shards
//                 (default: hardware concurrency; must be in
//                 [1, hardware concurrency])
//   --net NET     dist|shmem|hier:<tpn>|free (default dist)
//   -S SEED       run seed for probe order (default 1)
//   -v            per-rank statistics table
//   --trace FILE  write a Chrome/Perfetto trace of the run to FILE
//                 (open at https://ui.perfetto.dev); with telemetry on,
//                 completed steal spans are stitched in as flow events
//   --trace-csv FILE  write the raw event trace as CSV
//   --trace-cap N bound each rank's trace buffer to N events (ring:
//                 newest win; the overwrite count is reported)
//
// Run telemetry (see docs/observability.md):
//   --metrics FILE  sample every rank's metric registry on a virtual-time
//                 cadence and stream the time-series to FILE as JSONL;
//                 also prints ASCII sparklines of each metric
//   --report FILE   write the idle-time autopsy report (JSON) to FILE and
//                 print the per-rank cause table
//   --spans       print the steal-transaction span summary
//   --timeline FILE  standalone Perfetto export of the steal-transaction
//                 spans (one slice per steal on the thief's track, flow
//                 arrows for completed steals); requires --report
//   --psim-window-metrics  print the conservative-PDES window telemetry
//                 (windows, events, spans, shard imbalance, serial-lane
//                 fallback reason); requires -e psim
//   --obs-sample NS  telemetry sampling cadence in virtual ns
//                 (default 100000)
//   --csv         emit one machine-readable CSV result line (plus a header)
//                 instead of the human-readable summary
//   --replay FILE re-execute a schedule recorded by schedule_check (an
//                 `upcws-replay v1` file): the full configuration comes
//                 from the file, every other flag is ignored. Exit 0 iff
//                 the outcome matches the file's expectation.
//
// Fault injection / robustness (see docs/fault_injection.md):
//   --stall DUR[:PERIOD[:RANK]]  inject transient rank stalls: freeze for
//                 ~DUR ns roughly every PERIOD ns (default PERIOD=10*DUR),
//                 on RANK only (default: all ranks)
//   --drop-prob P   drop each mpi-ws message with probability P
//   --dup-prob P    duplicate each mpi-ws message with probability P
//   --steal-timeout NS  harden the steal protocols: thief timeout/retry
//                 (default when any fault is active: 10x remote latency)
//   --watchdog-ms M   abort with a structured hang report if no rank
//                 visits a node for M virtual milliseconds (sim engine)
//   --deadline-ns NS  cooperative deadline (also spelled --deadline): every
//                 rank cancels the search once its clock reaches NS. The
//                 run returns the partial count plus exact reclaimed-node
//                 accounting (nodes + reclaimed == 1 + spawned) instead of
//                 the sequential-match check
//   --crash R@NS[,R@NS...]  permanent fail-stop: rank R crashes at ~NS of
//                 its own virtual time. Survivors detect the death, revoke
//                 the dead rank's lock leases, salvage its stack, and replay
//                 orphaned in-flight transfers, so the traversal still
//                 visits every node exactly once (docs/fault_injection.md)
//   --crash-in-lock    make every --crash land while the rank holds a lock
//   --crash-mid-steal  make every --crash land inside a steal transfer
//   --crash-detect NS  failure-detection latency: survivors see a death
//                 only NS ns (of their own clock) after it happened
//
// Elastic membership / partitions (docs/fault_injection.md):
//   --drain R@NS[,R@NS...]  graceful leave: rank R drains at ~NS of its own
//                 virtual time — stops stealing at a safe point, hands its
//                 remaining chunks off through the recovery machinery, and
//                 exits the termination membership cleanly
//   --join R@NS[,R@NS...]   late join: rank R starts outside the membership
//                 and enters at ~NS (rank 0 seeds the root and cannot join)
//   --partition MASK:START:HEAL[,...]  correlated network partition: ranks
//                 with their bit set in MASK are cut off from the rest for
//                 virtual ns [START, HEAL); cross-cut traffic is delayed
//                 until the heal, never lost
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <fstream>
#include <memory>

#include "check/replay.hpp"
#include "obs/autopsy.hpp"
#include "obs/observer.hpp"
#include "pgas/faults.hpp"
#include "pgas/sim_engine.hpp"
#include "pgas/thread_engine.hpp"
#include "psim/engine.hpp"
#include "sim/scheduler.hpp"
#include "stats/table.hpp"
#include "trace/trace.hpp"
#include "uts/sequential.hpp"
#include "ws/driver.hpp"
#include "ws/uts_problem.hpp"

using namespace upcws;

namespace {

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "uts_cli: %s (see header comment for flags)\n", msg);
  std::exit(2);
}

ws::Algo parse_algo(const std::string& s) {
  for (ws::Algo a : ws::kAllAlgosExtended)
    if (s == ws::algo_label(a)) return a;
  usage("unknown algorithm label");
}

/// Strict nonnegative integer: rejects "-5" (which atoll would silently
/// wrap to a huge unsigned) and trailing junk.
std::uint64_t parse_u64(const char* s, const char* flag) {
  if (s == nullptr || *s == '\0' || *s == '-')
    usage((std::string(flag) + " wants a nonnegative integer").c_str());
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0')
    usage((std::string(flag) + " wants a nonnegative integer").c_str());
  return static_cast<std::uint64_t>(v);
}

/// "RANK@NS[,RANK@NS...]" -> (rank, at_ns) pairs handed to `add`.
template <typename F>
void parse_rank_at_list(const std::string& spec, const char* flag, F add) {
  const std::string want =
      std::string("bad ") + flag + " spec (want RANK@NS[,RANK@NS...])";
  // Negative ranks/times would wrap through the unsigned scan: refuse.
  if (spec.find('-') != std::string::npos) usage(want.c_str());
  const char* p = spec.c_str();
  while (*p != '\0') {
    int rank = -1;
    unsigned long long at = 0;
    int consumed = 0;
    if (std::sscanf(p, "%d@%llu%n", &rank, &at, &consumed) < 2)
      usage(want.c_str());
    add(rank, static_cast<std::uint64_t>(at));
    p += consumed;
    if (*p == ',')
      ++p;
    else if (*p != '\0')
      usage(want.c_str());
  }
}

/// "RANK@NS[,RANK@NS...]" -> fail-stop specs appended to the plan.
void parse_crashes(const std::string& spec, pgas::FaultPlan& plan) {
  parse_rank_at_list(spec, "--crash", [&](int rank, std::uint64_t at) {
    pgas::CrashSpec c;
    c.rank = rank;
    c.at_ns = at;
    plan.crashes.push_back(c);
  });
}

/// "MASK:START:HEAL[,...]" -> partition specs appended to the plan.
void parse_partitions(const std::string& spec, pgas::FaultPlan& plan) {
  if (spec.find('-') != std::string::npos)
    usage("bad --partition spec (want MASK:START:HEAL[,...])");
  const char* p = spec.c_str();
  while (*p != '\0') {
    unsigned long long mask = 0, start = 0, heal = 0;
    int consumed = 0;
    if (std::sscanf(p, "%llu:%llu:%llu%n", &mask, &start, &heal, &consumed) <
        3)
      usage("bad --partition spec (want MASK:START:HEAL[,...])");
    pgas::PartitionSpec ps;
    ps.group_mask = mask;
    ps.start_ns = start;
    ps.heal_ns = heal;
    plan.partitions.push_back(ps);
    p += consumed;
    if (*p == ',')
      ++p;
    else if (*p != '\0')
      usage("bad --partition spec (want MASK:START:HEAL[,...])");
  }
}

/// "DUR[:PERIOD[:RANK]]" (ns, ns, rank id) -> stall fields of the plan.
void parse_stall(const std::string& spec, pgas::FaultPlan& plan) {
  if (spec.find('-') != std::string::npos)
    usage("bad --stall spec (negative values; want DUR[:PERIOD[:RANK]])");
  unsigned long long dur = 0, period = 0;
  int rank = -1;
  const int got = std::sscanf(spec.c_str(), "%llu:%llu:%d", &dur, &period,
                              &rank);
  if (got < 1 || dur == 0) usage("bad --stall spec (want DUR[:PERIOD[:RANK]])");
  plan.stall_ns = dur;
  plan.stall_period_ns = got >= 2 ? period : dur * 10;
  plan.stall_rank = got >= 3 ? rank : -1;
}

}  // namespace

int main(int argc, char** argv) {
  uts::Params tree;
  tree.type = uts::TreeType::kBinomial;
  tree.b0 = 2000;
  tree.q = 0.4995;
  tree.m = 2;
  tree.gen_mx = 8;
  tree.root_seed = 5;

  ws::Algo algo = ws::Algo::kUpcDistMem;
  int nranks = 16;
  int chunk = 10;
  int poll = 1;
  double sample_frac = 0.5;
  double quantile = 0.8;
  int lifeline_dim = 0;
  bool verbose = false;
  bool csv = false;
  std::string engine_name = "sim";
  std::string net_name = "dist";
  int workers = 0;  // psim worker threads; 0 = hardware concurrency
  bool workers_set = false;
  std::string trace_json, trace_csv, replay_path;
  std::string metrics_path, report_path, timeline_path;
  bool spans = false;
  bool psim_window_metrics = false;
  std::uint64_t obs_sample_ns = 100'000;
  std::size_t trace_cap = 0;
  std::uint64_t run_seed = 1;
  pgas::FaultPlan faults;
  pgas::CrashSpec::Where crash_where = pgas::CrashSpec::Where::kAnywhere;
  std::uint64_t steal_timeout_ns = 0;
  bool steal_timeout_set = false;
  double watchdog_ms = 0.0;
  std::uint64_t deadline_ns = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "-t")
      tree.type = std::atoi(next()) == 0 ? uts::TreeType::kGeometric
                                         : uts::TreeType::kBinomial;
    else if (a == "-b")
      tree.b0 = std::atof(next());
    else if (a == "-q")
      tree.q = std::atof(next());
    else if (a == "-m")
      tree.m = std::atoi(next());
    else if (a == "-g")
      tree.gen_mx = std::atoi(next());
    else if (a == "-r")
      tree.root_seed = static_cast<std::uint32_t>(std::atoi(next()));
    else if (a == "-A")
      algo = parse_algo(next());
    else if (a == "-n")
      nranks = std::atoi(next());
    else if (a == "-c")
      chunk = std::atoi(next());
    else if (a == "-i")
      poll = std::atoi(next());
    else if (a == "--sample-frac")
      sample_frac = std::atof(next());
    else if (a == "--quantile")
      quantile = std::atof(next());
    else if (a == "--lifeline-dim")
      lifeline_dim = std::atoi(next());
    else if (a == "-e")
      engine_name = next();
    else if (a == "--workers") {
      workers = std::atoi(next());
      workers_set = true;
    }
    else if (a == "--net")
      net_name = next();
    else if (a == "-S")
      run_seed = parse_u64(next(), "-S");
    else if (a == "-v")
      verbose = true;
    else if (a == "--trace")
      trace_json = next();
    else if (a == "--trace-csv")
      trace_csv = next();
    else if (a == "--trace-cap")
      trace_cap = static_cast<std::size_t>(parse_u64(next(), "--trace-cap"));
    else if (a == "--metrics")
      metrics_path = next();
    else if (a == "--report")
      report_path = next();
    else if (a == "--spans")
      spans = true;
    else if (a == "--timeline")
      timeline_path = next();
    else if (a == "--psim-window-metrics")
      psim_window_metrics = true;
    else if (a == "--obs-sample")
      obs_sample_ns = parse_u64(next(), "--obs-sample");
    else if (a == "--csv")
      csv = true;
    else if (a == "--replay")
      replay_path = next();
    else if (a == "--stall")
      parse_stall(next(), faults);
    else if (a == "--drop-prob")
      faults.drop_prob = std::atof(next());
    else if (a == "--dup-prob")
      faults.dup_prob = std::atof(next());
    else if (a == "--steal-timeout") {
      steal_timeout_ns = parse_u64(next(), "--steal-timeout");
      steal_timeout_set = true;
    }
    else if (a == "--watchdog-ms")
      watchdog_ms = std::atof(next());
    else if (a == "--deadline-ns" || a == "--deadline")
      deadline_ns = parse_u64(next(), "--deadline-ns");
    else if (a == "--crash")
      parse_crashes(next(), faults);
    else if (a == "--crash-in-lock")
      crash_where = pgas::CrashSpec::Where::kInLock;
    else if (a == "--crash-mid-steal")
      crash_where = pgas::CrashSpec::Where::kMidSteal;
    else if (a == "--crash-detect")
      faults.crash_detect_ns = parse_u64(next(), "--crash-detect");
    else if (a == "--drain")
      parse_rank_at_list(next(), "--drain", [&](int rank, std::uint64_t at) {
        faults.drains.push_back(pgas::DrainSpec{rank, at});
      });
    else if (a == "--join")
      parse_rank_at_list(next(), "--join", [&](int rank, std::uint64_t at) {
        faults.joins.push_back(pgas::JoinSpec{rank, at});
      });
    else if (a == "--partition")
      parse_partitions(next(), faults);
    else
      usage(("unknown flag " + a).c_str());
  }

  if (!replay_path.empty()) {
    try {
      const check::ReplayFile rf = check::load_replay(replay_path);
      std::printf("uts_cli: replaying %s  algo=%s ranks=%d chunk=%d "
                  "seed=%llu  %zu recorded decisions, expected outcome: %s\n",
                  replay_path.c_str(), ws::algo_label(rf.spec.algo),
                  rf.spec.nranks, rf.spec.chunk,
                  static_cast<unsigned long long>(rf.spec.run_seed),
                  rf.trail.size(), rf.oracle.c_str());
      const check::RunOutcome o = check::run_replay(rf);
      if (o.violated)
        std::printf("outcome: VIOLATION %s\n  %s\n", o.oracle.c_str(),
                    o.message.c_str());
      else
        std::printf("outcome: clean run, %llu nodes\n",
                    static_cast<unsigned long long>(o.nodes));
      const bool match = check::replay_matches(rf, o);
      std::printf("replay %s the recorded expectation\n",
                  match ? "MATCHES" : "DOES NOT MATCH");
      return match ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "uts_cli: %s\n", e.what());
      return 2;
    }
  }

  // Validate the fault plan against the run shape before any work happens:
  // a nonsensical plan dies with one clear line instead of hanging, crashing
  // deep in the runtime, or silently injecting nothing.
  auto fault_error = [](const std::string& msg) {
    std::fprintf(stderr, "uts_cli: %s\n", msg.c_str());
    std::exit(2);
  };
  if (nranks < 1) fault_error("-n wants at least 1 rank");
  if (chunk < 1) fault_error("-c wants a chunk size of at least 1");
  if (workers_set) {
    const unsigned hc = std::thread::hardware_concurrency();
    const int max_workers = hc > 0 ? static_cast<int>(hc) : 1;
    if (workers < 1 || workers > max_workers)
      fault_error("--workers wants a thread count in [1," +
                  std::to_string(max_workers) + "] (hardware concurrency)");
  }
  if (poll < 1) fault_error("-i wants a poll interval of at least 1");
  if (!(sample_frac > 0.0) || sample_frac > 1.0)
    fault_error("--sample-frac wants a value in (0,1]");
  if (quantile < 0.0 || quantile > 1.0)
    fault_error("--quantile wants a value in [0,1]");
  if (lifeline_dim < 0) fault_error("--lifeline-dim must be >= 0");
  if (!timeline_path.empty() && report_path.empty())
    fault_error("--timeline requires --report (the span log it exports is "
                "only assembled for reported runs)");
  if (psim_window_metrics && engine_name != "psim")
    fault_error("--psim-window-metrics requires -e psim (window telemetry "
                "only exists under the conservative-PDES engine)");
  if (watchdog_ms < 0.0) fault_error("--watchdog-ms must be >= 0");
  if (faults.stalls_enabled() && faults.stall_rank >= nranks)
    fault_error("--stall rank " + std::to_string(faults.stall_rank) +
                " out of range [0," + std::to_string(nranks) +
                ") (or -1 for all ranks)");
  if (faults.drop_prob < 0.0 || faults.drop_prob > 1.0)
    fault_error("--drop-prob must be a probability in [0,1]");
  if (faults.dup_prob < 0.0 || faults.dup_prob > 1.0)
    fault_error("--dup-prob must be a probability in [0,1]");
  for (const pgas::CrashSpec& c : faults.crashes)
    if (c.rank < 0 || c.rank >= nranks)
      fault_error("--crash rank " + std::to_string(c.rank) +
                  " out of range [0," + std::to_string(nranks) + ")");
  for (const pgas::DrainSpec& d : faults.drains)
    if (d.rank < 0 || d.rank >= nranks)
      fault_error("--drain rank " + std::to_string(d.rank) +
                  " out of range [0," + std::to_string(nranks) + ")");
  for (const pgas::JoinSpec& j : faults.joins) {
    if (j.rank < 0 || j.rank >= nranks)
      fault_error("--join rank " + std::to_string(j.rank) +
                  " out of range [0," + std::to_string(nranks) + ")");
    if (j.rank == 0)
      fault_error("--join rank 0 is invalid (rank 0 seeds the root)");
  }
  for (const pgas::PartitionSpec& ps : faults.partitions) {
    if (ps.heal_ns <= ps.start_ns)
      fault_error("--partition heal time must be after its start time");
    const std::uint64_t all =
        nranks >= 64 ? ~0ull : ((1ull << nranks) - 1);
    if ((ps.group_mask & ~all) != 0)
      fault_error("--partition mask names ranks >= " +
                  std::to_string(nranks));
    if (ps.group_mask == 0 || ps.group_mask == all)
      fault_error("--partition mask must leave both sides nonempty");
  }

  pgas::RunConfig rcfg;
  rcfg.nranks = nranks;
  rcfg.seed = run_seed;
  if (net_name == "dist")
    rcfg.net = pgas::NetModel::distributed();
  else if (net_name == "shmem")
    rcfg.net = pgas::NetModel::shared_memory();
  else if (net_name == "free")
    rcfg.net = pgas::NetModel::free();
  else if (net_name.rfind("hier:", 0) == 0)
    rcfg.net = pgas::NetModel::hierarchical(std::atoi(net_name.c_str() + 5));
  else
    usage("unknown --net");

  for (pgas::CrashSpec& c : faults.crashes) c.where = crash_where;
  rcfg.faults = faults;
  rcfg.watchdog_ns = static_cast<std::uint64_t>(watchdog_ms * 1e6);

  const ws::UtsProblem prob(tree);
  ws::WsConfig cfg = ws::WsConfig::for_algo(algo, chunk);
  cfg.poll_interval = poll;
  cfg.sample_frac = sample_frac;
  cfg.quantile = quantile;
  cfg.lifeline_dim = lifeline_dim;
  cfg.steal_timeout_ns = steal_timeout_ns;
  cfg.cancel_at_ns = deadline_ns;
  if (faults.any() && !steal_timeout_set) {
    // Faults without hardening can stall steals indefinitely (and drops
    // would hang mpi-ws outright); default to timeouts at 10x the remote
    // latency. Pass --steal-timeout 0 explicitly to study the failure.
    cfg.steal_timeout_ns = 10 * rcfg.net.remote_ref_ns;
    if (!csv)
      std::printf("fault plan active: steal timeout defaulted to %llu ns\n",
                  static_cast<unsigned long long>(cfg.steal_timeout_ns));
  }
  std::unique_ptr<trace::Trace> tr;
  if (!trace_json.empty() || !trace_csv.empty()) {
    tr = std::make_unique<trace::Trace>(nranks);
    cfg.trace = tr.get();
    cfg.trace_cap = trace_cap;
  }
  std::unique_ptr<obs::Observer> observer;
  if (!metrics_path.empty() || !report_path.empty() || spans ||
      psim_window_metrics) {
    observer = std::make_unique<obs::Observer>();
    cfg.obs = observer.get();
    cfg.obs_sample_ns = obs_sample_ns;
  }

  if (!csv)
    std::printf("uts_cli: %s  algo=%s ranks=%d chunk=%d engine=%s net=%s\n",
                tree.describe().c_str(), ws::algo_label(algo), nranks, chunk,
                engine_name.c_str(), net_name.c_str());
  // Always state the effective seeds (stderr, so --csv stays parseable): a
  // reported run is reproducible only with tree seed + run seed in hand.
  std::fprintf(stderr, "seeds: tree=%u run=%llu (repeat with -r %u -S %llu)\n",
               tree.root_seed, static_cast<unsigned long long>(run_seed),
               tree.root_seed, static_cast<unsigned long long>(run_seed));

  ws::SearchResult res;
  try {
    if (engine_name == "sim") {
      pgas::SimEngine eng;
      res = ws::run_search(eng, rcfg, prob, cfg);
    } else if (engine_name == "psim") {
      psim::PsimEngine eng(workers);
      res = ws::run_search(eng, rcfg, prob, cfg);
    } else if (engine_name == "threads") {
      pgas::ThreadEngine eng;
      res = ws::run_search(eng, rcfg, prob, cfg);
    } else {
      usage("unknown -e engine");
    }
  } catch (const sim::HangDetected& e) {
    std::fprintf(stderr, "uts_cli: HANG DETECTED\n%s\n", e.what());
    return 3;
  } catch (const sim::TimeLimitExceeded& e) {
    std::fprintf(stderr, "uts_cli: virtual time limit exceeded\n%s\n",
                 e.what());
    return 4;
  }

  if (tr) {
    if (!trace_json.empty()) {
      std::ofstream f(trace_json);
      if (observer) {
        // Stitch completed steal spans into the timeline as Perfetto flow
        // events (arrows from the thief's request to its absorb).
        tr->write_chrome_json(f, observer->spans().flow_events());
      } else {
        tr->write_chrome_json(f);
      }
      std::printf("wrote %zu trace events to %s (chrome://tracing)\n",
                  tr->total_events(), trace_json.c_str());
      if (tr->dropped_events() > 0)
        std::printf("trace ring overflow: %llu events dropped (oldest first; "
                    "raise --trace-cap)\n",
                    static_cast<unsigned long long>(tr->dropped_events()));
    }
    if (!trace_csv.empty()) {
      std::ofstream f(trace_csv);
      tr->write_csv(f);
      std::printf("wrote event CSV to %s\n", trace_csv.c_str());
    }
  }
  if (observer) {
    if (!metrics_path.empty()) {
      std::ofstream f(metrics_path);
      observer->write_metrics_jsonl(f);
      std::printf("wrote %zu metric samples to %s\n",
                  observer->samples().total_points(), metrics_path.c_str());
      const std::string charts = observer->sparklines();
      if (!charts.empty()) std::fputs(charts.c_str(), stdout);
    }
    if (spans) {
      const std::vector<obs::Span> sp = observer->spans().assemble();
      std::size_t completed = 0, denied = 0, abandoned = 0, incomplete = 0,
                  salvaged = 0, timeouts = 0;
      for (const obs::Span& s : sp) {
        switch (s.outcome) {
          case obs::Span::Outcome::kCompleted: ++completed; break;
          case obs::Span::Outcome::kDenied: ++denied; break;
          case obs::Span::Outcome::kAbandoned: ++abandoned; break;
          case obs::Span::Outcome::kIncomplete: ++incomplete; break;
        }
        if (s.salvaged) ++salvaged;
        timeouts += s.timeouts;
      }
      std::printf(
          "steal spans: %zu total  %zu completed  %zu denied  %zu abandoned  "
          "%zu incomplete  (%zu salvaged, %zu timeouts)\n",
          sp.size(), completed, denied, abandoned, incomplete, salvaged,
          timeouts);
    }
    if (!report_path.empty()) {
      const obs::RunReport report = obs::autopsy(*observer, tr.get());
      std::ofstream f(report_path);
      report.write_json(f);
      std::printf("%s", report.ascii_table().c_str());
      std::printf("wrote idle-time autopsy to %s\n", report_path.c_str());
    }
    if (!timeline_path.empty()) {
      std::ofstream f(timeline_path);
      observer->spans().write_chrome_json(f);
      std::printf("wrote steal-span timeline to %s (chrome://tracing)\n",
                  timeline_path.c_str());
    }
    if (psim_window_metrics) {
      const std::vector<pgas::ObsSink::PsimWindow>& wins =
          observer->psim_windows();
      std::uint64_t events = 0, imbalance = 0;
      for (const pgas::ObsSink::PsimWindow& w : wins) {
        events += w.events;
        imbalance = std::max(
            imbalance, w.max_shard_switches - w.min_shard_switches);
      }
      std::printf("psim windows: %zu  events %llu  max shard imbalance %llu "
                  "switches/window\n",
                  wins.size(), static_cast<unsigned long long>(events),
                  static_cast<unsigned long long>(imbalance));
      for (const auto& [reason, count] : observer->psim_fallbacks())
        std::printf("psim fallback: serial lane (%s) x%llu\n", reason.c_str(),
                    static_cast<unsigned long long>(count));
    }
  }
  if (csv) {
    std::printf(
        "algo,ranks,chunk,net,tree,nodes,elapsed_s,mnodes_per_s,speedup,"
        "efficiency,steals,steals_per_s,working_frac\n");
    std::printf("%s,%d,%d,%s,\"%s\",%llu,%.9f,%.4f,%.4f,%.4f,%llu,%.1f,%.4f\n",
                ws::algo_label(algo), nranks, chunk, net_name.c_str(),
                tree.describe().c_str(),
                static_cast<unsigned long long>(res.agg.total_nodes),
                res.agg.elapsed_s, res.agg.nodes_per_sec / 1e6,
                res.agg.speedup, res.agg.efficiency,
                static_cast<unsigned long long>(res.agg.total_steals),
                res.agg.steals_per_sec, res.agg.working_frac);
  } else {
    std::printf("result: %s\n", res.agg.summary().c_str());
    std::printf("states: working %.1f%% searching %.1f%% stealing %.1f%% "
                "termination %.1f%%\n",
                100 * res.agg.state_frac[0], 100 * res.agg.state_frac[1],
                100 * res.agg.state_frac[2], 100 * res.agg.state_frac[3]);
  }

  if (deadline_ns > 0) {
    // A deadline run is judged on its accounting, not the full count: every
    // materialized node must be either visited or reclaimed, exactly once.
    std::printf("deadline: %llu ns  cancelled ranks %llu  visited %llu  "
                "reclaimed %llu  spawned %llu\n",
                static_cast<unsigned long long>(deadline_ns),
                static_cast<unsigned long long>(res.agg.total_cancels),
                static_cast<unsigned long long>(res.agg.total_nodes),
                static_cast<unsigned long long>(res.agg.total_reclaimed),
                static_cast<unsigned long long>(res.agg.total_spawned));
    if (res.agg.total_nodes + res.agg.total_reclaimed !=
        1 + res.agg.total_spawned) {
      std::printf("MISMATCH: nodes + reclaimed != 1 + spawned\n");
      return 1;
    }
    if (res.agg.total_cancels > 0) {
      std::printf("partial traversal (deadline fired): accounting OK\n");
      return 0;  // a fired deadline makes the sequential count moot
    }
  }

  // Verify against sequential (skip for paper-scale trees).
  const double expect = tree.expected_size();
  if (expect < 5e7) {
    const auto seq = uts::search_sequential(tree, 200'000'000);
    if (seq && seq->nodes != res.total_nodes()) {
      std::printf("MISMATCH: parallel %llu != sequential %llu\n",
                  static_cast<unsigned long long>(res.total_nodes()),
                  static_cast<unsigned long long>(seq->nodes));
      return 1;
    }
    if (seq && !csv)
      std::printf("verified against sequential traversal: OK\n");
  }

  if (verbose) {
    stats::Table t({"rank", "nodes", "releases", "steals", "probes",
                    "failed", "peak stack", "working%"});
    for (int r = 0; r < nranks; ++r) {
      const auto& s = res.per_thread[r];
      const double tot = static_cast<double>(s.timer.total_ns());
      t.add_row({stats::Table::fmt(r), stats::Table::fmt(s.c.nodes),
                 stats::Table::fmt(s.c.releases), stats::Table::fmt(s.c.steals),
                 stats::Table::fmt(s.c.probes),
                 stats::Table::fmt(s.c.failed_steals),
                 stats::Table::fmt(s.c.max_stack),
                 stats::Table::fmt(
                     tot > 0 ? 100.0 * s.timer.ns_in(stats::State::kWorking) /
                                   tot
                             : 0.0,
                     1)});
    }
    t.print(std::cout);
  }
  return 0;
}
