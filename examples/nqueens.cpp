// N-queens solution counting through the generic search facade
// (ws/search.hpp) — the paper's §6.1 claim in action: the load balancer is
// not UTS-specific; any depth-first state-space enumeration with small POD
// states plugs in.
//
// The task type holds a partial placement (one queen per row); expanding a
// task tries every non-attacked column of the next row. Solutions are
// counted at the leaves through a shared atomic counter.
//
// Run: ./build/examples/nqueens [N]   (default 11; known count 2680)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pgas/sim_engine.hpp"
#include "ws/search.hpp"

using namespace upcws;

namespace {

constexpr int kMaxN = 14;

struct Placement {
  std::int8_t n = 0;          // board size
  std::int8_t row = 0;        // rows filled so far
  std::int8_t col[kMaxN] = {};  // col[i] = column of the queen in row i

  bool safe(int c) const {
    for (int r = 0; r < row; ++r) {
      if (col[r] == c) return false;
      if (col[r] - c == row - r || c - col[r] == row - r) return false;
    }
    return true;
  }
};

/// Known solution counts for verification.
std::uint64_t known_count(int n) {
  static const std::uint64_t counts[] = {1,  1,   0,    0,    2,     10,
                                         4,  40,  92,   352,  724,   2680,
                                         14200, 73712, 365596};
  return n >= 0 && n <= 14 ? counts[n] : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 11;
  if (n < 1 || n > kMaxN) {
    std::fprintf(stderr, "usage: nqueens [1..%d]\n", kMaxN);
    return 2;
  }

  std::atomic<std::uint64_t> solutions{0};

  Placement root;
  root.n = static_cast<std::int8_t>(n);
  auto prob = ws::make_problem(
      root,
      [&solutions](const Placement& p, auto&& emit) {
        if (p.row == p.n) {
          solutions.fetch_add(1, std::memory_order_relaxed);
          return;  // leaf: complete placement
        }
        for (int c = 0; c < p.n; ++c) {
          if (!p.safe(c)) continue;
          Placement child = p;
          child.col[child.row] = static_cast<std::int8_t>(c);
          ++child.row;
          emit(child);
        }
      },
      [](const Placement& p) { return static_cast<int>(p.row); });

  pgas::SimEngine eng;
  pgas::RunConfig rcfg;
  rcfg.nranks = 16;
  rcfg.net = pgas::NetModel::distributed();
  // Queens nodes are cheaper than a SHA-1 evaluation; model ~80 ns/node.
  rcfg.net.work_ns_per_node = 80;

  const auto res = ws::run_search(
      eng, rcfg, prob, ws::WsConfig::for_algo(ws::Algo::kUpcDistMem, 8));

  std::printf("N=%d: %llu solutions (expected %llu)\n", n,
              static_cast<unsigned long long>(solutions.load()),
              static_cast<unsigned long long>(known_count(n)));
  std::printf("search: %s\n", res.agg.summary().c_str());
  std::printf("tree: %llu nodes, %llu leaves, %llu steals across %d ranks\n",
              static_cast<unsigned long long>(res.agg.total_nodes),
              static_cast<unsigned long long>(res.agg.total_leaves),
              static_cast<unsigned long long>(res.agg.total_steals),
              rcfg.nranks);

  return solutions.load() == known_count(n) ? 0 : 1;
}
