// service_soak: the service-level robustness gate for the resident job
// service (src/svc, docs/service.md).
//
// An open-loop Poisson stream of mixed jobs — UTS searches, knapsack and
// max-clique branch-and-bound — arrives in virtual time at two services
// (one per engine: deterministic sim and real threads), cycling through
// every variant in the canonical list (the five paper variants plus
// work-push, lifeline, and sampling), under chaos:
//
//   * ~30% of jobs carry fail-stop crashes or graceful drains (absorbed
//     in-run by recovery; the hit pool slots go down for repair, so later
//     jobs degrade to fewer ranks);
//   * ~25% carry a deadline drawn around the typical makespan (some die in
//     the queue, some cancel mid-run with exact reclaimed-node accounting);
//   * a few % are hang-seeded (a rank stalls forever under a tight
//     watchdog): the first attempt burns the fence, the hardened retry
//     completes — exercising the exponential-backoff ladder (sim only:
//     the virtual-time watchdog is a sim feature);
//   * a pinch of invalid and impossible specs exercise every typed
//     load-shedding rejection, and the arrival rate is chosen to overrun
//     the bounded queue now and then (kQueueFull backpressure).
//
// Pass criteria, checked here and again by tools/validate_report.py on the
// emitted JSON (schema upcws-service-report-v1):
//
//   * every job lands in EXACTLY ONE terminal state (completed / rejected /
//     cancelled / retries-exhausted) — the counts must add up;
//   * completed jobs returned the exact sequential answer (the service
//     cross-checks internally; any mismatch shows up in the job record);
//   * the job-state oracle (check::check_jobs) finds no violation: legal
//     transitions only, one terminal entry per job, no rank leaked to a
//     finished job, no pool over-subscription;
//   * p50/p90/p99 latency and throughput are reported from exact sorted
//     latencies (virtual ns), so the numbers are reproducible run to run.
//
// Flags:
//   --jobs N     total jobs across both services (default 240, min 16)
//   --algo LABEL pin every job to one algorithm (default: rotate through
//                the canonical kAllAlgosExtended list)
//   --seed S     generator seed (default 1)
//   --json FILE  write the upcws-service-report-v1 JSON report
//   --report FILE    write the upcws-service-timeline-v1 latency autopsy
//                    (also prints the ASCII breakdown and gates on >=99%
//                    per-job attribution)
//   --timeline FILE  Perfetto Chrome-JSON job lanes of the sim service
//                    (requires --report, which turns job logging on)
//   --budget-smoke  bounded CI mode: 72 jobs
//   -v           per-job terminal lines
#include <algorithm>
#include <chrono>
#include <iterator>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/job_oracle.hpp"
#include "obs/autopsy.hpp"
#include "pgas/sim_engine.hpp"
#include "pgas/thread_engine.hpp"
#include "svc/service.hpp"
#include "ws/driver.hpp"

using namespace upcws;

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "service_soak: %s (see header comment for flags)\n",
               msg.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const char* s, const char* flag) {
  if (s == nullptr || *s == '\0' || *s == '-')
    usage(std::string(flag) + " wants a nonnegative integer");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0')
    usage(std::string(flag) + " wants a nonnegative integer");
  return static_cast<std::uint64_t>(v);
}

/// Exact nearest-rank percentile of a sorted vector.
std::uint64_t pctl(const std::vector<std::uint64_t>& sorted, int p) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size();
  std::size_t idx = (n * static_cast<std::size_t>(p) + 99) / 100;
  if (idx == 0) idx = 1;
  return sorted[std::min(idx, n) - 1];
}

/// One job draw. All randomness flows from the caller's generator, so the
/// whole soak reproduces from --seed.
svc::JobSpec draw_job(std::mt19937_64& g, int index, bool sim_engine,
                      const ws::Algo* pin_algo) {
  auto pick = [&g](int lo, int hi) {  // inclusive
    return lo +
           static_cast<int>(g() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  auto chance = [&g](int pct) { return static_cast<int>(g() % 100) < pct; };

  svc::JobSpec s;
  const int wl = pick(0, 99);
  if (wl < 70) {
    s.workload = svc::Workload::kUts;
    s.tree = uts::test_small(pick(0, 7));
  } else if (wl < 85) {
    s.workload = svc::Workload::kKnapsack;
    s.bnb_size = pick(12, 18);
    s.bnb_seed = g() % 1000 + 1;
  } else {
    s.workload = svc::Workload::kMaxClique;
    s.bnb_size = pick(9, 13);
    s.bnb_seed = g() % 1000 + 1;
  }
  // Rotate through THE canonical list (config.hpp) so new variants join
  // the soak automatically; a pinned --algo replaces the rotation.
  s.algo = ws::kAllAlgosExtended[static_cast<std::size_t>(index) %
                                 std::size(ws::kAllAlgosExtended)];
  if (pin_algo != nullptr) s.algo = *pin_algo;
  s.chunk = pick(2, 5);
  s.run_seed = g() % 100'000 + 1;
  s.max_retries = 1;

  const bool push = s.algo == ws::Algo::kWorkPush;
  if (chance(30) && !push) {  // crash/drain chaos (hardened)
    s.steal_timeout_ns = 30'000;
    if (chance(60)) {
      pgas::CrashSpec c;
      c.rank = pick(1, 5);
      c.at_ns = static_cast<std::uint64_t>(pick(5, 100)) * 1000;
      s.faults.crashes.push_back(c);
    } else {
      s.faults.drains.push_back(
          {pick(1, 5), static_cast<std::uint64_t>(pick(10, 120)) * 1000});
    }
  }
  if (chance(25))  // deadline around the typical makespan
    s.deadline_ns = static_cast<std::uint64_t>(pick(100, 3000)) * 1000;
  // Hang-seeded jobs: a rank stalls forever, the tight watchdog fails the
  // attempt, the hardened retry (stalls do not recur) wins. A few are
  // forced deterministically so the retry ladder — and, for the ones with
  // no retry budget, the retries-exhausted terminal — always gets traffic;
  // the rest arrive by chance. Sim only: the watchdog is virtual-time.
  const bool force_hang = sim_engine && index % 48 == 12;
  if (force_hang || (sim_engine && chance(2))) {
    s.algo = ws::Algo::kUpcTerm;  // the stall proxy needs net-model polls
    s.min_ranks = 2;              // keep the stalled rank inside the run
    s.faults.stall_ns = 1'000'000'000'000ull;
    s.faults.stall_period_ns = 10'000;
    s.faults.stall_rank = 1;
    s.watchdog_ns = 5'000'000;
    s.deadline_ns = 0;  // let the retry ladder play out
    s.max_retries = index % 96 == 60 ? 0 : 2;
    return s;  // keep the seeded hang; no spec overrides below
  }
  if (chance(2)) s.chunk = 0;      // invalid spec: typed rejection
  if (chance(2)) s.min_ranks = 99;  // impossible spec: pool-exhausted
  return s;
}

std::string json_escape(const std::string& s) {
  std::string o;
  o.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') (o += '\\') += c;
    else if (c == '\n') o += "\\n";
    else if (static_cast<unsigned char>(c) < 0x20) o += ' ';
    else o += c;
  }
  return o;
}

void write_map(std::ostream& os, const std::map<std::string, int>& m) {
  bool first = true;
  os << "{";
  for (const auto& [k, v] : m) {
    os << (first ? "" : ", ") << "\"" << k << "\": " << v;
    first = false;
  }
  os << "}";
}

}  // namespace

int main(int argc, char** argv) {
  int total_jobs = 240;
  std::uint64_t seed = 1;
  ws::Algo pin_algo{};  // valid only when algo_set
  bool algo_set = false;
  std::string json_path, report_path, timeline_path;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing value for " + a);
      return argv[++i];
    };
    if (a == "--jobs")
      total_jobs = static_cast<int>(parse_u64(next(), "--jobs"));
    else if (a == "--algo") {
      try {
        pin_algo = check::algo_from_label(next());
      } catch (const std::exception& e) {
        usage(e.what());
      }
      algo_set = true;
    }
    else if (a == "--seed")
      seed = parse_u64(next(), "--seed");
    else if (a == "--json")
      json_path = next();
    else if (a == "--report")
      report_path = next();
    else if (a == "--timeline")
      timeline_path = next();
    else if (a == "--budget-smoke")
      total_jobs = 72;
    else if (a == "-v")
      verbose = true;
    else
      usage("unknown flag " + a);
  }
  if (total_jobs < 16)
    usage("--jobs wants at least 16 (all eight algorithms on both engines)");
  if (!timeline_path.empty() && report_path.empty())
    usage("--timeline requires --report (it is what turns job logging on)");

  const auto t0 = std::chrono::steady_clock::now();

  pgas::SimEngine sim_eng;
  pgas::ThreadEngine thr_eng;
  svc::ServiceConfig scfg;
  scfg.pool_ranks = 6;
  scfg.queue_cap = 12;
  // Repair must be commensurate with the soak horizon (tens of ms of
  // virtual time), or a few early crashes degrade the pool for good and
  // every later job runs single-rank.
  scfg.repair_ns = 2'000'000;
  // Job-lifecycle logging rides on --report. Pure observation: the soak's
  // terminal states and stdout are identical with or without it.
  obs::JobLog sim_log, thr_log;
  svc::ServiceConfig sim_cfg = scfg, thr_cfg = scfg;
  if (!report_path.empty()) {
    sim_cfg.observe_jobs = thr_cfg.observe_jobs = true;
    sim_cfg.job_log = &sim_log;
    thr_cfg.job_log = &thr_log;
  }
  svc::Service sim_svc(sim_eng, sim_cfg);
  svc::Service thr_svc(thr_eng, thr_cfg);

  // Open-loop Poisson arrivals (inverse-CDF exponential inter-arrivals),
  // one independent clock per service. The sim stream is deliberately a
  // little faster than the service drains so the bounded queue overruns
  // now and then; the threads stream runs in wall time, so its mean is
  // scaled to real makespans.
  std::mt19937_64 g(seed);
  std::uniform_real_distribution<double> uni(1e-12, 1.0);
  const double sim_mean_ns = 300'000.0;
  const double thr_mean_ns = 1'500'000.0;
  std::uint64_t sim_t = 0, thr_t = 0;
  int sim_jobs = 0, thr_jobs = 0;
  std::map<std::string, int> by_workload, by_algo;

  for (int i = 0; i < total_jobs; ++i) {
    const bool threads = i % 6 == 5;  // every 6th job: real-thread service
    const svc::JobSpec spec =
        draw_job(g, i, !threads, algo_set ? &pin_algo : nullptr);
    ++by_workload[svc::workload_name(spec.workload)];
    ++by_algo[ws::algo_label(spec.algo)];
    if (threads) {
      thr_t += static_cast<std::uint64_t>(-thr_mean_ns * std::log(uni(g)));
      thr_svc.submit(spec, thr_t);
      ++thr_jobs;
    } else {
      sim_t += static_cast<std::uint64_t>(-sim_mean_ns * std::log(uni(g)));
      sim_svc.submit(spec, sim_t);
      ++sim_jobs;
    }
  }
  sim_svc.drain();
  thr_svc.drain();

  // ---- verdicts -----------------------------------------------------------
  int mismatches = 0;
  std::map<std::string, int> by_state, by_reject;
  std::vector<std::uint64_t> latencies;
  auto absorb = [&](const svc::Service& s, const char* engine) {
    for (const auto& j : s.jobs()) {
      ++by_state[svc::state_name(j.state)];
      if (j.state == svc::JobState::kRejected)
        ++by_reject[svc::reject_name(j.reject)];
      if (j.state == svc::JobState::kCompleted) {
        latencies.push_back(j.finish_ns - j.arrival_ns);
        if (!j.error.empty()) {
          ++mismatches;
          std::printf("job %s/%llu COMPLETED WITH ERROR: %s\n", engine,
                      static_cast<unsigned long long>(j.id),
                      j.error.c_str());
        }
      }
      if (!svc::state_terminal(j.state)) {
        ++mismatches;
        std::printf("job %s/%llu NOT TERMINAL after drain (%s)\n", engine,
                    static_cast<unsigned long long>(j.id),
                    svc::state_name(j.state));
      }
      if (verbose)
        std::printf(
            "job %s/%llu %-9s %-15s -> %-17s attempts=%d ranks=%d "
            "nodes=%llu reclaimed=%llu\n",
            engine, static_cast<unsigned long long>(j.id),
            svc::workload_name(j.spec.workload), ws::algo_label(j.spec.algo),
            svc::state_name(j.state), j.attempts, j.ranks_used,
            static_cast<unsigned long long>(j.nodes),
            static_cast<unsigned long long>(j.reclaimed));
    }
  };
  absorb(sim_svc, "sim");
  absorb(thr_svc, "threads");

  const auto sim_rep = check::check_jobs(sim_svc.views(), sim_svc.pool_ranks());
  const auto thr_rep = check::check_jobs(thr_svc.views(), thr_svc.pool_ranks());
  std::vector<std::string> violations = sim_rep.violations;
  violations.insert(violations.end(), thr_rep.violations.begin(),
                    thr_rep.violations.end());

  const svc::Summary ssum = sim_svc.summary();
  const svc::Summary tsum = thr_svc.summary();
  std::sort(latencies.begin(), latencies.end());
  const std::uint64_t p50 = pctl(latencies, 50), p90 = pctl(latencies, 90),
                      p99 = pctl(latencies, 99);
  const std::uint64_t lmax = latencies.empty() ? 0 : latencies.back();
  const std::uint64_t completed = ssum.completed + tsum.completed;
  const std::uint64_t rejected = ssum.rejected + tsum.rejected;
  const std::uint64_t cancelled = ssum.cancelled + tsum.cancelled;
  const std::uint64_t exhausted =
      ssum.retries_exhausted + tsum.retries_exhausted;
  const bool sums_ok =
      completed + rejected + cancelled + exhausted ==
      static_cast<std::uint64_t>(total_jobs);
  // Throughput over the sim service's virtual horizon (the deterministic,
  // reproducible half of the story).
  const double sim_horizon_s = static_cast<double>(ssum.now_ns) / 1e9;
  const double throughput =
      sim_horizon_s > 0 ? static_cast<double>(ssum.completed) / sim_horizon_s
                        : 0.0;

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf(
      "service_soak: %d jobs (%d sim, %d threads)  completed=%llu "
      "rejected=%llu cancelled=%llu retries-exhausted=%llu  retries=%llu\n",
      total_jobs, sim_jobs, thr_jobs,
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(exhausted),
      static_cast<unsigned long long>(ssum.retry_attempts +
                                      tsum.retry_attempts));
  std::printf(
      "  chaos absorbed: %llu crashes, %llu drains; %llu nodes reclaimed "
      "after deadlines\n",
      static_cast<unsigned long long>(ssum.crashes + tsum.crashes),
      static_cast<unsigned long long>(ssum.drains + tsum.drains),
      static_cast<unsigned long long>(ssum.nodes_reclaimed +
                                      tsum.nodes_reclaimed));
  std::printf(
      "  latency (ns): p50=%llu p90=%llu p99=%llu max=%llu over %zu "
      "completed;  sim throughput %.1f jobs/s (virtual), queue depth max "
      "%llu\n",
      static_cast<unsigned long long>(p50),
      static_cast<unsigned long long>(p90),
      static_cast<unsigned long long>(p99),
      static_cast<unsigned long long>(lmax), latencies.size(), throughput,
      static_cast<unsigned long long>(
          std::max(ssum.queue_depth_max, tsum.queue_depth_max)));
  std::printf("  oracle: %llu jobs checked, %zu violation(s)\n",
              static_cast<unsigned long long>(sim_rep.checked +
                                              thr_rep.checked),
              violations.size());
  for (const std::string& v : violations) std::printf("    %s\n", v.c_str());
  if (!sums_ok)
    std::printf("TERMINAL-STATE SUM MISMATCH: %llu + %llu + %llu + %llu != %d\n",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(cancelled),
                static_cast<unsigned long long>(exhausted), total_jobs);

  if (!json_path.empty()) {
    std::ofstream f(json_path);
    if (!f) usage("cannot write --json " + json_path);
    f << "{\n  \"schema\": \"upcws-service-report-v1\",\n";
    f << "  \"jobs\": " << total_jobs << ",\n";
    f << "  \"terminal\": {\"completed\": " << completed
      << ", \"rejected\": " << rejected << ", \"cancelled\": " << cancelled
      << ", \"retries_exhausted\": " << exhausted << "},\n";
    f << "  \"engines\": {\"sim\": " << sim_jobs << ", \"threads\": "
      << thr_jobs << "},\n";
    f << "  \"workloads\": ";
    write_map(f, by_workload);
    f << ",\n  \"algos\": ";
    write_map(f, by_algo);
    f << ",\n  \"reject_reasons\": ";
    write_map(f, by_reject);
    f << ",\n  \"retry_attempts\": " << ssum.retry_attempts + tsum.retry_attempts
      << ",\n";
    f << "  \"chaos\": {\"crashes\": " << ssum.crashes + tsum.crashes
      << ", \"drains\": " << ssum.drains + tsum.drains << "},\n";
    f << "  \"nodes\": {\"visited\": "
      << ssum.nodes_visited + tsum.nodes_visited
      << ", \"reclaimed\": " << ssum.nodes_reclaimed + tsum.nodes_reclaimed
      << "},\n";
    f << "  \"latency_ns\": {\"count\": " << latencies.size()
      << ", \"p50\": " << p50 << ", \"p90\": " << p90 << ", \"p99\": " << p99
      << ", \"max\": " << lmax << "},\n";
    f << "  \"queue_depth_max\": "
      << std::max(ssum.queue_depth_max, tsum.queue_depth_max) << ",\n";
    f << "  \"throughput_jobs_per_s\": " << throughput << ",\n";
    f << "  \"oracle\": {\"checked\": " << sim_rep.checked + thr_rep.checked
      << ", \"violations\": [";
    for (std::size_t i = 0; i < violations.size(); ++i)
      f << (i > 0 ? ", " : "") << "\"" << json_escape(violations[i]) << "\"";
    f << "]},\n";
    f << "  \"result_mismatches\": " << mismatches << ",\n";
    f << "  \"elapsed_s\": " << elapsed_s << "\n}\n";
    std::printf("wrote report to %s\n", json_path.c_str());
  }

  bool timeline_ok = true;
  if (!report_path.empty()) {
    const obs::ServiceTimeline tl = obs::service_autopsy({&sim_log, &thr_log});
    std::printf("%s", tl.ascii_table().c_str());
    timeline_ok = tl.min_job_attributed_frac >= 0.99 &&
                  tl.jobs == static_cast<std::uint64_t>(total_jobs) &&
                  tl.unfinished == 0;
    if (!timeline_ok)
      std::printf(
          "SERVICE TIMELINE ATTRIBUTION FAILED: worst job %.2f%%, "
          "%llu jobs logged, %llu unfinished\n",
          100.0 * tl.min_job_attributed_frac,
          static_cast<unsigned long long>(tl.jobs),
          static_cast<unsigned long long>(tl.unfinished));
    std::ofstream f(report_path);
    if (!f) usage("cannot write --report " + report_path);
    tl.write_json(f);
    std::printf("wrote service timeline to %s\n", report_path.c_str());
    if (!timeline_path.empty()) {
      std::ofstream tf(timeline_path);
      if (!tf) usage("cannot write --timeline " + timeline_path);
      sim_log.write_chrome_json(tf);
      std::printf("wrote Perfetto job lanes to %s\n", timeline_path.c_str());
    }
  }

  return (violations.empty() && mismatches == 0 && sums_ok && timeline_ok)
             ? 0
             : 1;
}
