// A guided tour of the PGAS substrate itself — the UPC-runtime layer the
// load balancer is built on: shared arrays with affinity, upc_forall-style
// iteration, collectives, locks, and the interconnect cost model under both
// the shared-memory and distributed profiles.
//
// Computes a depth histogram of a UTS tree in SPMD style: ranks split the
// root's subtrees, bin node depths into a cyclic GlobalArray, and combine
// results with collectives — then does it again on a different simulated
// interconnect to show how the same program's virtual cost changes.
//
// Run: ./build/examples/pgas_tour
#include <cstdio>
#include <vector>

#include "pgas/collectives.hpp"
#include "pgas/global_array.hpp"
#include "pgas/sim_engine.hpp"
#include "uts/sequential.hpp"
#include "uts/tree.hpp"

using namespace upcws;

namespace {

/// SPMD body: sequential DFS over this rank's share of root subtrees,
/// binning depths into the shared histogram.
void census(pgas::Ctx& c, const uts::Params& tree,
            pgas::GlobalArray<std::int64_t>& hist, pgas::Coll& coll,
            std::int64_t* total_out) {
  const uts::Node root = uts::make_root(tree);
  const int b0 = uts::num_children(root, tree);
  std::int64_t mine = 0;

  std::vector<uts::Node> stack;
  for (int i = c.rank(); i < b0; i += c.nranks())
    stack.push_back(uts::make_child(root, i));

  std::vector<std::int64_t> local_bins(hist.size(), 0);
  while (!stack.empty()) {
    const uts::Node n = stack.back();
    stack.pop_back();
    c.charge_node_work();
    ++mine;
    const std::size_t bin =
        std::min<std::size_t>(static_cast<std::size_t>(n.height) / 64,
                              hist.size() - 1);
    ++local_bins[bin];  // batch locally; flush through the PGAS below
    uts::expand(n, tree, stack);
    c.yield();
  }
  // Flush the private bins into the shared histogram (remote fetch_adds,
  // each charged by the element's affinity).
  for (std::size_t b = 0; b < hist.size(); ++b)
    if (local_bins[b] != 0) hist.fetch_add(c, b, local_bins[b]);

  // Root counts itself once.
  if (c.rank() == 0) ++mine;

  // Combine: a collective sum over everyone's personal counts.
  *total_out = coll.allreduce_sum(c, mine);
}

}  // namespace

int main() {
  const uts::Params tree = uts::scaled_medium(3);
  const auto seq = uts::search_sequential(tree);
  std::printf("tree: %s -> %llu nodes (sequential reference)\n\n",
              tree.describe().c_str(),
              static_cast<unsigned long long>(seq->nodes));

  for (const char* profile : {"shared-memory", "distributed"}) {
    pgas::RunConfig cfg;
    cfg.nranks = 8;
    cfg.net = profile[0] == 's' ? pgas::NetModel::shared_memory()
                                : pgas::NetModel::distributed();

    pgas::GlobalArray<std::int64_t> hist(16, cfg.nranks,
                                         pgas::Layout::kCyclic);
    pgas::Coll coll(cfg.nranks);
    std::vector<std::int64_t> totals(cfg.nranks, 0);

    pgas::SimEngine eng;
    const auto res = eng.run(cfg, [&](pgas::Ctx& c) {
      census(c, tree, hist, coll, &totals[c.rank()]);
    });

    std::int64_t histo_sum = 0;
    for (std::size_t b = 0; b < hist.size(); ++b)
      histo_sum += hist.read_raw(b);

    std::printf("[%s profile] simulated makespan %.2f ms\n", profile,
                res.elapsed_s * 1e3);
    std::printf("  allreduce total: %lld   histogram total: %lld   "
                "(sequential: %llu)\n",
                static_cast<long long>(totals[0]),
                static_cast<long long>(histo_sum) + 1,  // + root
                static_cast<unsigned long long>(seq->nodes));
    std::printf("  depth histogram (64-deep bins): ");
    for (std::size_t b = 0; b < hist.size(); ++b)
      if (hist.read_raw(b) != 0)
        std::printf("[%zu]=%lld ", b, static_cast<long long>(hist.read_raw(b)));
    std::printf("\n\n");

    if (totals[0] != static_cast<std::int64_t>(seq->nodes)) {
      std::printf("MISMATCH\n");
      return 1;
    }
    // Reset the shared histogram for the next profile.
    for (std::size_t b = 0; b < hist.size(); ++b) hist.write_raw(b, 0);
  }
  std::printf("both profiles verified against the sequential count: OK\n");
  std::printf("(note: no load balancing here — static subtree split — so "
              "the makespan is dominated by whichever rank drew the giant "
              "subtree; examples/quickstart.cpp shows the fix)\n");
  return 0;
}
