// schedule_check: systematic schedule exploration over the deterministic
// simulator — search the interleaving space of a work-stealing
// configuration for protocol violations, shrink any failing schedule to a
// minimal decision trail, and emit a replay file that reproduces the bug in
// one run (re-execute with --replay, or uts_cli --replay).
//
// Examples:
//   ./schedule_check                                   # defaults, random walk
//   ./schedule_check -A upc-sharedmem --strategy pct --budget 100
//   ./schedule_check --crash 0@120000 --strategy random --budget 60 \
//       --emit-replay bug.replay
//   ./schedule_check --replay bug.replay
//   ./schedule_check --budget-smoke                    # CI self-test
//
// Flags:
//   -A LABEL        algorithm (Figure-3 label; default upc-distmem)
//   -n N            ranks (default 4)
//   -c K            chunk size (default 2)
//   --net NET       dist|shared|shmem|free|smp<tpn> (default dist)
//   --preset P      tree preset: test-small|geo|hybrid (default test-small)
//   -r R            tree root seed (default 0)
//   -S SEED         run seed (probe order; default 1)
//   --strategy S    random|pct|dfs (default random)
//   --budget N      schedules to explore (default 50)
//   --seed S        exploration seed (default 1)
//   --pct-depth D   PCT preemption points (default 3)
//   --dfs-depth D   DFS decision-prefix bound (default 24)
//   --window NS     scheduler fairness window (default 100000)
//   --steal-timeout NS   hardened-protocol timeout (default 30000)
//   --watchdog-ms M      progress watchdog, virtual ms (default 200)
//   --crash R@NS[,R@NS...]   fail-stop crash plan
//   --crash-detect NS        failure-detection latency (default 5000)
//   --seed-bug claim-cas     enable the deliberately weakened claim-CAS
//                            (checker self-test; see docs/schedule_checking.md)
//   --seed-bug drop-distress enable the lifeline hand-off bug (a woken thief
//                            pulls without leaving the barrier first)
//   --sample-frac F          sampling policy: fraction of ranks probed
//   --quantile Q             sampling policy: load quantile stolen from
//   --lifeline-dim D         lifeline policy: hypercube dimension cap
//   --no-shrink     keep the first failing trail as found
//   --emit-replay FILE   write the (shrunk) failing schedule as a replay file
//   --trace FILE    Chrome-JSON trace of the failing (shrunk) schedule
//   --replay FILE   re-execute a recorded schedule; exit 0 iff the outcome
//                   matches the file's expectation
//   --budget-smoke  fixed-budget CI self-test: correct configurations
//                   (including the lifeline and sampling variants) must check
//                   clean, and the seeded claim-CAS and drop-distress bugs
//                   must be found, shrunk, and reproduced from their emitted
//                   replays. Exit 0 iff all hold.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/checker.hpp"
#include "check/replay.hpp"
#include "trace/trace.hpp"

using namespace upcws;

namespace {

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "schedule_check: %s (see header comment for flags)\n",
               msg.c_str());
  std::exit(2);
}

check::Strategy strategy_from(const std::string& s) {
  if (s == "random") return check::Strategy::kRandom;
  if (s == "pct") return check::Strategy::kPct;
  if (s == "dfs") return check::Strategy::kDfs;
  usage("unknown --strategy " + s);
}

const char* strategy_name(check::Strategy s) {
  switch (s) {
    case check::Strategy::kRandom: return "random";
    case check::Strategy::kPct: return "pct";
    case check::Strategy::kDfs: return "dfs";
  }
  return "?";
}

void parse_crashes(const std::string& spec, std::vector<pgas::CrashSpec>& out) {
  const char* p = spec.c_str();
  while (*p != '\0') {
    int rank = -1;
    unsigned long long at = 0;
    int consumed = 0;
    if (std::sscanf(p, "%d@%llu%n", &rank, &at, &consumed) < 2 || rank < 0)
      usage("bad --crash spec (want RANK@NS[,RANK@NS...])");
    pgas::CrashSpec c;
    c.rank = rank;
    c.at_ns = at;
    out.push_back(c);
    p += consumed;
    if (*p == ',')
      ++p;
    else if (*p != '\0')
      usage("bad --crash spec");
  }
}

std::string trail_str(const std::vector<std::uint16_t>& t) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < t.size(); ++i)
    os << (i > 0 ? " " : "") << t[i];
  os << "]";
  return os.str();
}

void report_violation(const check::CheckSpec& spec,
                      const check::CheckResult& r, std::uint64_t window_ns,
                      const std::string& emit_replay,
                      const std::string& trace_path) {
  std::printf("VIOLATION: %s\n  %s\n", r.violation.oracle.c_str(),
              r.violation.message.c_str());
  std::printf("  found on schedule %d after %d runs; shrink used %d runs\n",
              r.violation.schedule_index, r.schedules_run, r.shrink_runs);
  std::printf("  original trail: %zu decisions, %s non-default\n",
              r.violation.original.size(),
              trail_str(r.violation.original).c_str());
  std::printf("  minimal trail:  %s\n", trail_str(r.violation.trail).c_str());
  check::ReplayFile rf;
  rf.spec = spec;
  rf.window_ns = window_ns;
  rf.oracle = r.violation.oracle;
  rf.trail = r.violation.trail;
  if (!emit_replay.empty()) {
    check::save_replay(emit_replay, rf);
    std::printf("  replay file: %s\n", emit_replay.c_str());
  }
  if (!trace_path.empty()) {
    // Render the offending window: re-run the minimal schedule with the
    // trace sink attached and export Chrome JSON.
    trace::Trace tr(spec.nranks);
    const check::RunOutcome o = check::run_replay(rf, &tr);
    std::ofstream f(trace_path);
    tr.write_chrome_json(f);
    std::printf("  trace of minimal schedule (%s again: %s): %s\n",
                o.violated ? "violates" : "does NOT violate",
                o.oracle.c_str(), trace_path.c_str());
  }
}

/// The canned CI self-test (--budget-smoke). Small fixed budgets so the
/// whole thing stays in CI-seconds territory.
int budget_smoke() {
  int failures = 0;

  // 1. A correct configuration (crash plan, hardened distmem) must check
  //    clean under every strategy.
  check::CheckSpec clean;
  clean.algo = ws::Algo::kUpcDistMem;
  clean.nranks = 4;
  clean.chunk = 2;
  clean.tree = uts::test_small(0);
  // Crash timing tuned so the seeded claim-CAS bug below is schedule-
  // reachable: rank 0 must die inside a grant-service window, leaving a
  // pending lineage record that a live thief and a recoverer then race for.
  clean.crashes.push_back({0, 10'000, pgas::CrashSpec::Where::kAnywhere});
  for (const check::Strategy s :
       {check::Strategy::kRandom, check::Strategy::kPct,
        check::Strategy::kDfs}) {
    check::CheckConfig cc;
    cc.strategy = s;
    cc.budget = s == check::Strategy::kPct ? 6 : 10;
    const check::CheckResult r = check::check(clean, cc);
    std::printf("smoke[clean/%s]: %d schedules, %s\n", strategy_name(s),
                r.schedules_run, r.found ? "VIOLATION (unexpected!)" : "ok");
    if (r.found) {
      std::printf("  %s: %s\n", r.violation.oracle.c_str(),
                  r.violation.message.c_str());
      ++failures;
    }
  }

  // 2. The extension variants (lifeline parking, sampling selection) must
  //    also check clean — same crash plan, random walk.
  for (const ws::Algo a : {ws::Algo::kLifeline, ws::Algo::kSampling}) {
    check::CheckSpec v = clean;
    v.algo = a;
    check::CheckConfig vc;
    vc.strategy = check::Strategy::kRandom;
    vc.budget = 10;
    const check::CheckResult r = check::check(v, vc);
    std::printf("smoke[clean/%s]: %d schedules, %s\n", ws::algo_label(a),
                r.schedules_run, r.found ? "VIOLATION (unexpected!)" : "ok");
    if (r.found) {
      std::printf("  %s: %s\n", r.violation.oracle.c_str(),
                  r.violation.message.c_str());
      ++failures;
    }
  }

  // 3. Each seeded bug must be found within the smoke budget, shrink, and
  //    reproduce from its replay file. claim-cas breaks crash-recovery
  //    arbitration on the base algorithm; drop-distress breaks the lifeline
  //    wake/barrier hand-off (no crash plan needed — the window is in the
  //    termination protocol itself).
  struct SeededBug {
    const char* name;
    check::CheckSpec spec;
    int budget;
  };
  check::CheckSpec claim = clean;
  claim.bug_weak_claim = true;
  check::CheckSpec distress;
  distress.algo = ws::Algo::kLifeline;
  distress.nranks = 4;
  distress.chunk = 2;
  distress.tree = uts::test_small(0);
  distress.bug_drop_distress = true;
  for (const SeededBug& b : {SeededBug{"claim-cas", claim, 40},
                             SeededBug{"drop-distress", distress, 40}}) {
    check::CheckConfig cc;
    cc.strategy = check::Strategy::kRandom;
    cc.budget = b.budget;
    const check::CheckResult r = check::check(b.spec, cc);
    if (!r.found) {
      std::printf("smoke[seeded-bug/%s]: NOT FOUND in %d schedules\n", b.name,
                  r.schedules_run);
      ++failures;
      continue;
    }
    std::printf("smoke[seeded-bug/%s]: found %s on schedule %d, shrunk %zu "
                "-> %zu decisions\n",
                b.name, r.violation.oracle.c_str(),
                r.violation.schedule_index, r.violation.original.size(),
                r.violation.trail.size());
    check::ReplayFile rf;
    rf.spec = b.spec;
    rf.window_ns = cc.window_ns;
    rf.oracle = r.violation.oracle;
    rf.trail = r.violation.trail;
    std::stringstream round;
    check::write_replay(round, rf);
    const check::ReplayFile loaded = check::read_replay(round);
    const check::RunOutcome o = check::run_replay(loaded);
    if (!check::replay_matches(loaded, o)) {
      std::printf("smoke[seeded-bug/%s]: replay did NOT reproduce (%s)\n",
                  b.name, o.violated ? o.oracle.c_str() : "clean run");
      ++failures;
    } else {
      std::printf("smoke[seeded-bug/%s]: replay reproduces "
                  "deterministically\n",
                  b.name);
    }
  }

  std::printf("budget-smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  check::CheckSpec spec;
  check::CheckConfig cc;
  std::string emit_replay, trace_path, replay_path, preset = "test-small";
  std::uint32_t root_seed = 0;
  auto crash_where = pgas::CrashSpec::Where::kAnywhere;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage("missing value for " + a);
      return argv[++i];
    };
    if (a == "-A")
      spec.algo = check::algo_from_label(next());
    else if (a == "-n")
      spec.nranks = std::atoi(next());
    else if (a == "-c")
      spec.chunk = std::atoi(next());
    else if (a == "--net")
      spec.net = next();
    else if (a == "--preset")
      preset = next();
    else if (a == "-r")
      root_seed = static_cast<std::uint32_t>(std::atoi(next()));
    else if (a == "-S")
      spec.run_seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--strategy")
      cc.strategy = strategy_from(next());
    else if (a == "--budget")
      cc.budget = std::atoi(next());
    else if (a == "--seed")
      cc.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--pct-depth")
      cc.pct_depth = std::atoi(next());
    else if (a == "--dfs-depth")
      cc.dfs_depth = static_cast<std::size_t>(std::atoll(next()));
    else if (a == "--window")
      cc.window_ns = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--steal-timeout")
      spec.steal_timeout_ns = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--watchdog-ms")
      spec.watchdog_ns = static_cast<std::uint64_t>(std::atof(next()) * 1e6);
    else if (a == "--crash")
      parse_crashes(next(), spec.crashes);
    else if (a == "--crash-in-lock")
      crash_where = pgas::CrashSpec::Where::kInLock;
    else if (a == "--crash-mid-steal")
      crash_where = pgas::CrashSpec::Where::kMidSteal;
    else if (a == "--crash-detect")
      spec.crash_detect_ns = static_cast<std::uint64_t>(std::atoll(next()));
    else if (a == "--seed-bug") {
      const std::string b = next();
      if (b == "claim-cas")
        spec.bug_weak_claim = true;
      else if (b == "drop-distress")
        spec.bug_drop_distress = true;
      else
        usage("unknown --seed-bug " + b);
    } else if (a == "--sample-frac")
      spec.sample_frac = std::atof(next());
    else if (a == "--quantile")
      spec.quantile = std::atof(next());
    else if (a == "--lifeline-dim")
      spec.lifeline_dim = std::atoi(next());
    else if (a == "--no-shrink")
      cc.shrink = false;
    else if (a == "--emit-replay")
      emit_replay = next();
    else if (a == "--trace")
      trace_path = next();
    else if (a == "--replay")
      replay_path = next();
    else if (a == "--budget-smoke")
      smoke = true;
    else
      usage("unknown flag " + a);
  }

  for (pgas::CrashSpec& c : spec.crashes) c.where = crash_where;

  if (smoke) return budget_smoke();

  try {
    if (!replay_path.empty()) {
      const check::ReplayFile rf = check::load_replay(replay_path);
      std::printf("replaying %s: algo=%s ranks=%d expected=%s, %zu recorded "
                  "decisions\n",
                  replay_path.c_str(), ws::algo_label(rf.spec.algo),
                  rf.spec.nranks, rf.oracle.c_str(), rf.trail.size());
      trace::Trace tr(rf.spec.nranks);
      const check::RunOutcome o =
          check::run_replay(rf, trace_path.empty() ? nullptr : &tr);
      if (!trace_path.empty()) {
        std::ofstream f(trace_path);
        tr.write_chrome_json(f);
        std::printf("trace of the replayed schedule: %s\n",
                    trace_path.c_str());
      }
      if (o.violated)
        std::printf("outcome: VIOLATION %s\n  %s\n", o.oracle.c_str(),
                    o.message.c_str());
      else
        std::printf("outcome: clean run, %llu nodes\n",
                    static_cast<unsigned long long>(o.nodes));
      const bool match = check::replay_matches(rf, o);
      std::printf("replay %s the recorded expectation\n",
                  match ? "MATCHES" : "DOES NOT MATCH");
      return match ? 0 : 1;
    }

    spec.tree = preset == "test-small" ? uts::test_small(root_seed)
                : preset == "geo"      ? uts::geo_test(root_seed)
                : preset == "hybrid"   ? uts::hybrid_test(root_seed)
                                       : throw std::invalid_argument(
                                             "unknown --preset " + preset);

    std::printf("schedule_check: algo=%s ranks=%d chunk=%d net=%s tree=%s\n",
                ws::algo_label(spec.algo), spec.nranks, spec.chunk,
                spec.net.c_str(), spec.tree.describe().c_str());
    std::printf("  strategy=%s budget=%d seed=%llu window=%llu ns "
                "crashes=%zu%s\n",
                strategy_name(cc.strategy), cc.budget,
                static_cast<unsigned long long>(cc.seed),
                static_cast<unsigned long long>(cc.window_ns),
                spec.crashes.size(),
                spec.bug_weak_claim      ? " seed-bug=claim-cas"
                : spec.bug_drop_distress ? " seed-bug=drop-distress"
                                         : "");

    const check::CheckResult r = check::check(spec, cc);
    if (!r.found) {
      std::printf("no violation in %d schedules", r.schedules_run);
      if (cc.strategy == check::Strategy::kDfs)
        std::printf(" (%llu distinct)",
                    static_cast<unsigned long long>(r.distinct_states));
      std::printf("\n");
      return 0;
    }
    report_violation(spec, r, cc.window_ns, emit_replay, trace_path);
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schedule_check: %s\n", e.what());
    return 2;
  }
}
