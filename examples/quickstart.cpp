// Quickstart: count an Unbalanced Tree Search tree in parallel with the
// paper's best algorithm (upc-distmem) and print the paper's metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Shows the two execution engines:
//   * SimEngine    — simulates N UPC threads (virtual time) on one core,
//                    the mode used for the paper's scaling figures;
//   * ThreadEngine — real std::threads, the mode you'd use for actual work
//                    on a multi-core machine.
#include <cstdio>

#include "pgas/sim_engine.hpp"
#include "pgas/thread_engine.hpp"
#include "uts/sequential.hpp"
#include "ws/driver.hpp"
#include "ws/uts_problem.hpp"

using namespace upcws;

int main() {
  // 1. Pick a tree. scaled_bench(5) is a ~519k-node instance of the paper's
  //    binomial family (root fan-out 2000, extreme subtree imbalance).
  const uts::Params tree = uts::scaled_bench(5);
  std::printf("tree: %s (expected ~%.0f nodes)\n", tree.describe().c_str(),
              tree.expected_size());

  // 2. Sequential baseline (also the correctness reference).
  const auto seq = uts::search_sequential(tree);
  std::printf("sequential: %llu nodes in %.2fs (%.2f M nodes/s)\n\n",
              static_cast<unsigned long long>(seq->nodes), seq->seconds,
              seq->nodes_per_sec() / 1e6);

  // 3. Parallel search on 16 simulated UPC threads over a distributed-
  //    memory interconnect model.
  const ws::UtsProblem prob(tree);
  pgas::SimEngine sim;
  pgas::RunConfig rcfg;
  rcfg.nranks = 16;
  rcfg.net = pgas::NetModel::distributed();
  const auto res =
      ws::run_algo(sim, rcfg, ws::Algo::kUpcDistMem, prob, /*chunk=*/10);

  std::printf("upc-distmem on %d simulated threads:\n  %s\n", rcfg.nranks,
              res.agg.summary().c_str());
  std::printf("  per-state time: working %.1f%%  searching %.1f%%  "
              "stealing %.1f%%  termination %.1f%%\n\n",
              100 * res.agg.state_frac[0], 100 * res.agg.state_frac[1],
              100 * res.agg.state_frac[2], 100 * res.agg.state_frac[3]);

  // 4. The same algorithm, identical sources, on real threads.
  pgas::ThreadEngine thr;
  pgas::RunConfig tcfg;
  tcfg.nranks = 4;
  tcfg.net = pgas::NetModel::free();  // no modeled delays: just go fast
  const auto tres =
      ws::run_algo(thr, tcfg, ws::Algo::kUpcDistMem, prob, /*chunk=*/10,
                   /*seq_nodes_per_sec=*/seq->nodes_per_sec());
  std::printf("same algorithm on %d real threads:\n  %s\n", tcfg.nranks,
              tres.agg.summary().c_str());

  // 5. The acceptance criterion: every traversal counts the same tree.
  const bool ok =
      res.total_nodes() == seq->nodes && tres.total_nodes() == seq->nodes;
  std::printf("\ncounts match sequential: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
