// Branch-and-bound 0/1 knapsack on the work-stealing engine — the "more
// sophisticated strategies such as branch-and-bound" the paper's §3/§6.1
// says the UPC model readily supports.
//
// This example builds the B&B by hand through the generic ws::make_problem
// facade, to show there is no magic; src/bnb/ packages the same pattern as
// a reusable library (see tests/test_bnb.cpp and bench/bench_bnb.cpp).
//
// Each task is a partial decision prefix (items 0..idx-1 decided) with its
// accumulated profit/weight. A shared incumbent (best complete solution so
// far) lives in the global address space as an atomic; expansion prunes any
// branch whose fractional upper bound cannot beat the incumbent.
//
// Because pruning depends on how fast the incumbent improves, the *node
// count* is schedule-dependent — but the returned optimum must always equal
// the sequential dynamic-programming answer, which this example verifies.
//
// Run: ./build/examples/knapsack_bnb [items]   (default 30)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pgas/sim_engine.hpp"
#include "ws/search.hpp"

using namespace upcws;

namespace {

struct Item {
  std::int64_t weight;
  std::int64_t profit;
};

/// Deterministic, weakly correlated instance (hard enough to branch).
std::vector<Item> make_instance(int n, std::uint64_t seed) {
  std::vector<Item> items(n);
  std::uint64_t x = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (auto& it : items) {
    it.weight = 1 + static_cast<std::int64_t>(next() % 1000);
    it.profit = it.weight + static_cast<std::int64_t>(next() % 200);
  }
  // Sort by profit density so the greedy fractional bound is tight.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.profit * b.weight > b.profit * a.weight;
  });
  return items;
}

/// Exact reference via branch-and-bound DFS, sequential (the instance
/// weights are too large for table DP; a sequential B&B with the same bound
/// is exact and fast).
std::int64_t solve_sequential(const std::vector<Item>& items,
                              std::int64_t capacity);

struct Task {
  std::int32_t idx;
  std::int64_t profit;
  std::int64_t weight;
};

/// Greedy fractional relaxation: an upper bound on any completion of `t`.
std::int64_t upper_bound(const std::vector<Item>& items, std::int64_t capacity,
                         const Task& t) {
  std::int64_t bound = t.profit;
  std::int64_t room = capacity - t.weight;
  for (std::size_t i = static_cast<std::size_t>(t.idx);
       i < items.size() && room > 0; ++i) {
    if (items[i].weight <= room) {
      room -= items[i].weight;
      bound += items[i].profit;
    } else {
      bound += items[i].profit * room / items[i].weight;
      room = 0;
    }
  }
  return bound;
}

std::int64_t solve_sequential(const std::vector<Item>& items,
                              std::int64_t capacity) {
  std::int64_t best = 0;
  std::vector<Task> stack{{0, 0, 0}};
  while (!stack.empty()) {
    const Task t = stack.back();
    stack.pop_back();
    best = std::max(best, t.profit);
    if (static_cast<std::size_t>(t.idx) == items.size()) continue;
    if (upper_bound(items, capacity, t) <= best) continue;
    const Item& it = items[static_cast<std::size_t>(t.idx)];
    stack.push_back({t.idx + 1, t.profit, t.weight});  // skip item
    if (t.weight + it.weight <= capacity)              // take item
      stack.push_back({t.idx + 1, t.profit + it.profit, t.weight + it.weight});
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 30;
  const auto items = make_instance(n, 12345);
  std::int64_t total_weight = 0;
  for (const auto& it : items) total_weight += it.weight;
  const std::int64_t capacity = total_weight / 2;

  const std::int64_t reference = solve_sequential(items, capacity);
  std::printf("knapsack: %d items, capacity %lld, optimum (sequential) %lld\n",
              n, static_cast<long long>(capacity),
              static_cast<long long>(reference));

  // Shared incumbent: conceptually a UPC shared variable; here an atomic in
  // the global address space, improved with a CAS loop.
  std::atomic<std::int64_t> incumbent{0};
  auto improve = [&incumbent](std::int64_t v) {
    std::int64_t cur = incumbent.load(std::memory_order_relaxed);
    while (v > cur && !incumbent.compare_exchange_weak(
                          cur, v, std::memory_order_acq_rel)) {
    }
  };

  auto prob = ws::make_problem(
      Task{0, 0, 0},
      [&](const Task& t, auto&& emit) {
        improve(t.profit);
        if (static_cast<std::size_t>(t.idx) == items.size()) return;
        if (upper_bound(items, capacity, t) <=
            incumbent.load(std::memory_order_relaxed))
          return;  // prune: no completion can beat the incumbent
        const Item& it = items[static_cast<std::size_t>(t.idx)];
        emit(Task{t.idx + 1, t.profit, t.weight});
        if (t.weight + it.weight <= capacity)
          emit(Task{t.idx + 1, t.profit + it.profit, t.weight + it.weight});
      },
      [](const Task& t) { return static_cast<int>(t.idx); });

  pgas::SimEngine eng;
  pgas::RunConfig rcfg;
  rcfg.nranks = 8;
  rcfg.net = pgas::NetModel::distributed();
  rcfg.net.work_ns_per_node = 120;  // bound computation per node

  const auto res = ws::run_search(
      eng, rcfg, prob, ws::WsConfig::for_algo(ws::Algo::kUpcDistMem, 4));

  std::printf("parallel optimum: %lld\n",
              static_cast<long long>(incumbent.load()));
  std::printf("search: %s\n", res.agg.summary().c_str());

  const bool ok = incumbent.load() == reference;
  std::printf("matches sequential optimum: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
